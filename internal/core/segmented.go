package core

import (
	"fmt"

	"fabp/internal/rtl"
)

// buildSegmentedNetlist generates the long-query FabP variant (§III-C):
// "FabP uses a set of multiplexers to divide Query Seq. and Reference
// Stream into multiple segments and process each segment in a cycle.
// Therefore, for longer queries, FabP needs multiple iterations to
// calculate all the alignment instances."
//
// With S = cfg.Iterations, each alignment instance carries comparators for
// one ceil(Lq/S)-element segment; a one-hot schedule derived from the
// beat-valid delay chain steers segment j through the comparators on cycle
// j after the beat loads, and a per-instance accumulator sums the partial
// pop-counts. A new beat may enter at most every S cycles — exactly the
// effective-bandwidth division Table I reports for FabP-250.
//
// Contract: the driver asserts BeatValid for one cycle and then keeps it
// low for at least S-1 cycles (the AXI port stalls while the datapath is
// busy). Hits for a beat appear S+1 edges after its acceptance.
func buildSegmentedNetlist(cfg NetlistConfig) (*rtl.Netlist, *AccelPorts, error) {
	s := cfg.Iterations
	segElems := (cfg.QueryElems + s - 1) / s
	n := rtl.New(fmt.Sprintf("fabp_q%d_b%d_s%d", cfg.QueryElems, cfg.Beat, s))
	ports := &AccelPorts{}

	// Query storage: full width, as in the full-rate build.
	ports.QueryLoad = n.Input("qload")
	ports.Query = make([][6]rtl.Signal, cfg.QueryElems)
	query := make([][6]rtl.Signal, cfg.QueryElems)
	for i := 0; i < cfg.QueryElems; i++ {
		for b := 0; b < 6; b++ {
			in := n.Input(fmt.Sprintf("q%d_%d", i, b))
			ports.Query[i][b] = in
			query[i][b] = n.DFFE(in, ports.QueryLoad)
		}
	}

	ports.BeatValid = n.Input("beat_valid")
	ports.Beat = make([]RefBit, cfg.Beat)
	for i := 0; i < cfg.Beat; i++ {
		ports.Beat[i] = RefBit{
			n.Input(fmt.Sprintf("beat%d_0", i)),
			n.Input(fmt.Sprintf("beat%d_1", i)),
		}
	}

	// Reference stream buffer, identical to the full-rate build.
	bufLen := cfg.QueryElems + cfg.Beat
	refBuf := make([]RefBit, bufLen)
	for j := 0; j < cfg.Beat; j++ {
		i := cfg.QueryElems + j
		refBuf[i] = RefBit{
			n.DFFE(ports.Beat[j][0], ports.BeatValid),
			n.DFFE(ports.Beat[j][1], ports.BeatValid),
		}
	}
	for i := cfg.QueryElems - 1; i >= 0; i-- {
		src := refBuf[i+cfg.Beat]
		refBuf[i] = RefBit{
			n.DFFE(src[0], ports.BeatValid),
			n.DFFE(src[1], ports.BeatValid),
		}
	}

	// Segment schedule: d[k] is BeatValid delayed k edges; segment j is
	// active (on the comparators) during the cycle where d[j+1] is high.
	d := make([]rtl.Signal, s+2)
	d[0] = ports.BeatValid
	for k := 1; k < len(d); k++ {
		d[k] = n.DFF(d[k-1])
	}
	segOH := make([]rtl.Signal, s)
	for j := 0; j < s; j++ {
		segOH[j] = d[j+1]
		n.SetName(segOH[j], fmt.Sprintf("seg_%d", j))
	}
	firstSeg := segOH[0]
	anySeg := n.OrWide(segOH)
	ports.HitsValid = d[s+1]
	n.SetName(ports.HitsValid, "hits_valid")
	n.Output("hits_valid", ports.HitsValid)

	// Shared query-segment multiplexers: 6 bits × segElems, selected by
	// the one-hot schedule. Padding positions (beyond the query) read as
	// all-zero instructions; their matches are masked below.
	qSeg := make([][6]rtl.Signal, segElems)
	for i := 0; i < segElems; i++ {
		for b := 0; b < 6; b++ {
			data := make([][]rtl.Signal, s)
			for j := 0; j < s; j++ {
				pos := j*segElems + i
				if pos < cfg.QueryElems {
					data[j] = []rtl.Signal{query[pos][b]}
				} else {
					data[j] = []rtl.Signal{rtl.Zero}
				}
			}
			qSeg[i][b] = n.OneHotMux(segOH, data)[0]
		}
	}
	// isPad[i] is 1 when the active segment's element i lies beyond the
	// query — only possible in the last segment.
	isPad := make([]rtl.Signal, segElems)
	for i := 0; i < segElems; i++ {
		if (s-1)*segElems+i >= cfg.QueryElems {
			isPad[i] = segOH[s-1]
		} else {
			isPad[i] = rtl.Zero
		}
	}

	zeroRef := RefBit{rtl.Zero, rtl.Zero}
	at := func(i int) RefBit {
		if i < 0 || i >= bufLen {
			return zeroRef
		}
		return refBuf[i]
	}
	// muxRef selects, for window offset base+i, the active segment's
	// reference bit pair.
	muxRef := func(k, i, delta int) RefBit {
		data0 := make([][]rtl.Signal, s)
		data1 := make([][]rtl.Signal, s)
		for j := 0; j < s; j++ {
			rb := at(k + 1 + j*segElems + i + delta)
			data0[j] = []rtl.Signal{rb[0]}
			data1[j] = []rtl.Signal{rb[1]}
		}
		return RefBit{
			n.OneHotMux(segOH, data0)[0],
			n.OneHotMux(segOH, data1)[0],
		}
	}

	scoreWidth := ScoreWidth(cfg.QueryElems)
	ports.Hits = make([]rtl.Signal, cfg.Beat)
	ports.Scores = make([][]rtl.Signal, cfg.Beat)
	for k := 0; k < cfg.Beat; k++ {
		matches := make([]rtl.Signal, segElems)
		for i := 0; i < segElems; i++ {
			m := ComparatorCell(n, qSeg[i], muxRef(k, i, 0), muxRef(k, i, -1), muxRef(k, i, -2))
			if isPad[i] != rtl.Zero {
				m = n.And(m, n.Not(isPad[i]))
			}
			matches[i] = m
		}
		partial := BuildPopCount(n, matches, cfg.Pop)

		// Accumulator: acc <= partial + (firstSeg ? 0 : acc), updating only
		// while a segment is active.
		acc := make([]rtl.Signal, scoreWidth)
		setAcc := make([]func(rtl.Signal), scoreWidth)
		for b := 0; b < scoreWidth; b++ {
			acc[b], setAcc[b] = n.FeedbackDFF(anySeg)
		}
		prev := make([]rtl.Signal, scoreWidth)
		for b := 0; b < scoreWidth; b++ {
			prev[b] = n.And(acc[b], n.Not(firstSeg))
		}
		sum := trimWidth(n.AddBus(prev, partial), scoreWidth)
		for b := 0; b < scoreWidth; b++ {
			src := rtl.Zero
			if b < len(sum) {
				src = sum[b]
			}
			setAcc[b](src)
		}

		ports.Hits[k] = n.CompareGEConst(acc, uint(cfg.Threshold))
		ports.Scores[k] = acc
		n.Output(fmt.Sprintf("hit_%d", k), ports.Hits[k])
		n.OutputBus(fmt.Sprintf("score_%d", k), acc)
	}

	ports.Latency = s + 1
	ports.BeatInterval = s

	if err := n.Validate(); err != nil {
		return nil, nil, err
	}
	return n, ports, nil
}
