package core

import (
	"fmt"

	"fabp/internal/rtl"
)

// ScoreWidth returns the register width needed for an alignment score over
// queryElems elements (the paper notes 10 bits for its maximum query of
// 750 elements).
func ScoreWidth(queryElems int) int {
	w := 1
	for 1<<uint(w) <= queryElems {
		w++
	}
	return w
}

// InstanceResult exposes the nets an alignment instance produces.
type InstanceResult struct {
	// Matches are the registered per-element comparator outputs.
	Matches []rtl.Signal
	// Score is the registered alignment score bus (bit 0 first).
	Score []rtl.Signal
	// Hit is 1 when Score >= threshold (combinational on Score).
	Hit rtl.Signal
}

// BuildInstance assembles one alignment instance (§III-C): one comparator
// cell per query element, a register stage on the match bits, a pop-counter
// producing the score, a score register, and a threshold comparator.
//
// query holds 6 signals per element; window holds one RefBit per element
// plus context accessors via the prev slices (prev1[i]/prev2[i] are the
// reference nucleotides one/two positions before window[i]).
// matchEn enables the match-bit register stage (asserted the cycle the
// reference buffer holds the beat); scoreEn enables the score register one
// stage later.
func BuildInstance(n *rtl.Netlist, query [][6]rtl.Signal, window, prev1, prev2 []RefBit,
	threshold int, pop PopVariant, matchEn, scoreEn rtl.Signal) InstanceResult {
	if len(window) != len(query) || len(prev1) != len(query) || len(prev2) != len(query) {
		panic(fmt.Sprintf("core: instance wiring mismatch: q=%d w=%d p1=%d p2=%d",
			len(query), len(window), len(prev1), len(prev2)))
	}
	matches := make([]rtl.Signal, len(query))
	for i := range query {
		m := ComparatorCell(n, query[i], window[i], prev1[i], prev2[i])
		matches[i] = n.DFFE(m, matchEn)
	}
	sum := BuildPopCount(n, matches, pop)
	sumReg := n.RegisterBus(trimWidth(sum, ScoreWidth(len(query))), scoreEn)
	hit := n.CompareGEConst(sumReg, uint(threshold))
	return InstanceResult{Matches: matches, Score: sumReg, Hit: hit}
}
