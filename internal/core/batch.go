package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"fabp/internal/bio"
	"fabp/internal/isa"
)

// Batch aligns many queries against one reference in a single pass over
// the data — the paper's evaluation workload shape (thousands of queries
// sampled from NCBI nr against one database). The reference context array
// is computed once and shared by every query, and work parallelizes over
// (query, reference-chunk) tiles.
type Batch struct {
	engines     []*Engine
	parallelism int
}

// NewBatch prepares engines for every (program, threshold) pair.
func NewBatch(progs []isa.Program, thresholds []int) (*Batch, error) {
	if len(progs) == 0 {
		return nil, fmt.Errorf("core: empty batch")
	}
	if len(progs) != len(thresholds) {
		return nil, fmt.Errorf("core: %d programs but %d thresholds", len(progs), len(thresholds))
	}
	b := &Batch{parallelism: runtime.GOMAXPROCS(0)}
	for i := range progs {
		e, err := NewEngine(progs[i], thresholds[i])
		if err != nil {
			return nil, fmt.Errorf("core: batch query %d: %w", i, err)
		}
		b.engines = append(b.engines, e)
	}
	return b, nil
}

// NewBatchUniform prepares a batch where every query uses the same
// threshold fraction of its own maximum score (validated and rounded by
// ThresholdFromFraction).
func NewBatchUniform(progs []isa.Program, thresholdFrac float64) (*Batch, error) {
	thresholds := make([]int, len(progs))
	for i, p := range progs {
		t, err := ThresholdFromFraction(thresholdFrac, len(p))
		if err != nil {
			return nil, err
		}
		thresholds[i] = t
	}
	return NewBatch(progs, thresholds)
}

// Len returns the number of queries in the batch.
func (b *Batch) Len() int { return len(b.engines) }

// SetParallelism bounds the worker goroutines (minimum 1).
func (b *Batch) SetParallelism(p int) {
	if p < 1 {
		p = 1
	}
	b.parallelism = p
}

// Align scans the reference once and returns per-query hit lists, each in
// position order.
func (b *Batch) Align(ref bio.NucSeq) [][]Hit {
	ctxs := contexts(ref)
	results := make([][]Hit, len(b.engines))

	type tile struct{ qi, lo, hi int }
	var tiles []tile
	const chunk = 1 << 16
	for qi, e := range b.engines {
		n := len(ref) - len(e.prog) + 1
		if n <= 0 {
			continue
		}
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			tiles = append(tiles, tile{qi, lo, hi})
		}
	}

	partials := make([][][]Hit, len(b.engines))
	var mu sync.Mutex
	sem := make(chan struct{}, b.parallelism)
	var wg sync.WaitGroup
	for _, tl := range tiles {
		wg.Add(1)
		sem <- struct{}{}
		go func(tl tile) {
			defer wg.Done()
			defer func() { <-sem }()
			h := b.engines[tl.qi].alignRange(ctxs, tl.lo, tl.hi)
			mu.Lock()
			partials[tl.qi] = append(partials[tl.qi], h)
			mu.Unlock()
		}(tl)
	}
	wg.Wait()

	for qi := range partials {
		var all []Hit
		for _, p := range partials[qi] {
			all = append(all, p...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i].Pos < all[j].Pos })
		results[qi] = all
	}
	return results
}

// BestHits returns, per query, the single best-scoring position regardless
// of thresholds (ok false where the reference is too short).
func (b *Batch) BestHits(ref bio.NucSeq) []Hit {
	out := make([]Hit, len(b.engines))
	for i, e := range b.engines {
		if h, ok := e.BestHit(ref); ok {
			out[i] = h
		} else {
			out[i] = Hit{Pos: -1, Score: -1}
		}
	}
	return out
}
