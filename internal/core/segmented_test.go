package core

import (
	"math/rand"
	"reflect"
	"testing"

	"fabp/internal/bio"
	"fabp/internal/isa"
)

// TestSegmentedMatchesEngine: the multi-iteration datapath must produce
// exactly the Engine's hits for several segmentation factors, including
// ones that leave a partial last segment.
func TestSegmentedMatchesEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	cases := []struct {
		residues, beat, iterations int
	}{
		{2, 4, 2},  // 6 elements, segs of 3
		{3, 8, 3},  // 9 elements, segs of 3
		{3, 4, 2},  // 9 elements, segs of 5 -> last segment padded
		{4, 4, 5},  // 12 elements, segs of 3 -> more iterations than needed? 5*3=15>12, pad
		{5, 16, 4}, // 15 elements, segs of 4 -> pad 1
	}
	for _, tc := range cases {
		p := bio.RandomProtSeq(rng, tc.residues)
		prog := isa.MustEncodeProtein(p)
		threshold := len(prog) / 2
		cfg := NetlistConfig{
			QueryElems: len(prog), Beat: tc.beat,
			Threshold: threshold, Iterations: tc.iterations,
		}
		runner, err := NewNetlistRunner(cfg, prog)
		if err != nil {
			t.Fatalf("res=%d iter=%d: %v", tc.residues, tc.iterations, err)
		}
		if runner.ports.BeatInterval != tc.iterations || runner.ports.Latency != tc.iterations+1 {
			t.Fatalf("timing contract wrong: %+v", runner.ports)
		}
		engine, _ := NewEngine(prog, threshold)
		for trial := 0; trial < 3; trial++ {
			ref := bio.RandomNucSeq(rng, 40+rng.Intn(80))
			hw := runner.Align(ref)
			sw := engine.Align(ref)
			if !reflect.DeepEqual(hw, sw) {
				t.Fatalf("res=%d beat=%d iter=%d trial=%d:\n hw %v\n sw %v",
					tc.residues, tc.beat, tc.iterations, trial, hw, sw)
			}
		}
	}
}

// TestSegmentedCycleCost: the segmented build must take ~Iterations times
// the cycles of the full-rate build for the same reference.
func TestSegmentedCycleCost(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	p := bio.RandomProtSeq(rng, 3)
	prog := isa.MustEncodeProtein(p)
	ref := bio.RandomNucSeq(rng, 160)
	full, err := NewNetlistRunner(NetlistConfig{QueryElems: len(prog), Beat: 8, Threshold: 5}, prog)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := NewNetlistRunner(NetlistConfig{QueryElems: len(prog), Beat: 8, Threshold: 5, Iterations: 3}, prog)
	if err != nil {
		t.Fatal(err)
	}
	h1 := full.Align(ref)
	c1 := full.Cycles()
	h3 := seg.Align(ref)
	c3 := seg.Cycles()
	if !reflect.DeepEqual(h1, h3) {
		t.Fatal("results differ between rates")
	}
	beats := (len(ref) + 7) / 8
	if c3 < 3*beats || c3 > 3*beats+10 {
		t.Errorf("segmented cycles %d, expected ≈%d", c3, 3*beats)
	}
	if c1 >= c3 {
		t.Errorf("full-rate (%d) should be faster than segmented (%d)", c1, c3)
	}
}

// TestSegmentedResourceShape: comparators shrink with segmentation — the
// §III-C trade the resource estimator models.
func TestSegmentedResourceShape(t *testing.T) {
	prog := isa.MustEncodeProtein(bio.ProtSeq{bio.Met, bio.Lys, bio.Trp, bio.Glu})
	full, _, err := BuildNetlist(NetlistConfig{QueryElems: 12, Beat: 4, Threshold: 6})
	if err != nil {
		t.Fatal(err)
	}
	seg, _, err := BuildNetlist(NetlistConfig{QueryElems: 12, Beat: 4, Threshold: 6, Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	_ = prog
	// The segmented build trades comparator area for muxes and control; at
	// 3 iterations of a 12-element query the comparator bank shrinks 3x.
	// Assert the qualitative direction on FF count (full build registers
	// every match bit; segmented keeps only accumulators).
	if seg.Stats().FFs >= full.Stats().FFs {
		t.Errorf("segmented FFs %d should undercut full-rate %d",
			seg.Stats().FFs, full.Stats().FFs)
	}
	t.Logf("full: %+v, segmented: %+v", full.Stats(), seg.Stats())
}

func TestSegmentedValidation(t *testing.T) {
	bad := NetlistConfig{QueryElems: 6, Beat: 4, Threshold: 3, Iterations: 7}
	if err := bad.Validate(); err == nil {
		t.Error("iterations beyond query length must fail")
	}
	wb := NetlistConfig{QueryElems: 6, Beat: 4, Threshold: 3, Iterations: 2, WriteBack: true}
	if err := wb.Validate(); err == nil {
		t.Error("write-back with segmentation must fail")
	}
}

// TestSegmentedStallInsensitivity: extra idle cycles between beats must
// not change results.
func TestSegmentedStallInsensitivity(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	p := bio.RandomProtSeq(rng, 2)
	prog := isa.MustEncodeProtein(p)
	cfg := NetlistConfig{QueryElems: len(prog), Beat: 4, Threshold: 3, Iterations: 2}
	runner, err := NewNetlistRunner(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	ref := bio.RandomNucSeq(rng, 60)
	clean := runner.Align(ref)
	stalls := make([]int, (len(ref)+3)/4)
	for i := range stalls {
		stalls[i] = rng.Intn(3)
	}
	stalled := runner.AlignWithStalls(ref, stalls)
	if !reflect.DeepEqual(clean, stalled) {
		t.Error("stalls changed segmented results")
	}
}
