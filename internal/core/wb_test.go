package core

import (
	"math/rand"
	"reflect"
	"testing"

	"fabp/internal/bio"
	"fabp/internal/isa"
	"fabp/internal/rtl"
)

// TestWriteBackMatchesDirectHits: the full §III-C record path (priority
// encoder → FIFO → pop interface) must reproduce exactly the hits read
// directly off the instance outputs, which in turn equal the Engine.
func TestWriteBackMatchesDirectHits(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 3; trial++ {
		p := bio.RandomProtSeq(rng, 2+rng.Intn(3))
		prog := isa.MustEncodeProtein(p)
		threshold := len(prog) / 3 // low threshold → many hits → FIFO pressure
		cfg := NetlistConfig{
			QueryElems: len(prog), Beat: 8, Threshold: threshold,
			WriteBack: true, WBDepth: 4,
		}
		runner, err := NewNetlistRunner(cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		ref := bio.RandomNucSeq(rng, 60+rng.Intn(60))
		direct := runner.Align(ref)
		viaWB, err := runner.AlignViaWriteBack(ref)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(direct, viaWB) {
			t.Fatalf("trial %d: direct %v != write-back %v", trial, direct, viaWB)
		}
		engine, _ := NewEngine(prog, threshold)
		if sw := engine.Align(ref); !reflect.DeepEqual(sw, viaWB) {
			t.Fatalf("trial %d: engine %v != write-back %v", trial, sw, viaWB)
		}
	}
}

func TestWriteBackManyHitsPerBeat(t *testing.T) {
	// Threshold 0: every instance hits every beat — maximal FIFO pressure.
	p := bio.ProtSeq{bio.Met}
	prog := isa.MustEncodeProtein(p)
	cfg := NetlistConfig{
		QueryElems: len(prog), Beat: 4, Threshold: 0,
		WriteBack: true, WBDepth: 2,
	}
	runner, err := NewNetlistRunner(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	ref := bio.RandomNucSeq(rand.New(rand.NewSource(3)), 24)
	hits, err := runner.AlignViaWriteBack(ref)
	if err != nil {
		t.Fatal(err)
	}
	want := len(ref) - len(prog) + 1
	if len(hits) != want {
		t.Fatalf("threshold 0: %d records, want %d", len(hits), want)
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].Pos <= hits[i-1].Pos {
			t.Fatal("records out of order")
		}
	}
}

func TestWriteBackConfigValidation(t *testing.T) {
	cfg := NetlistConfig{QueryElems: 3, Beat: 6, Threshold: 1, WriteBack: true}
	if err := cfg.Validate(); err == nil {
		t.Error("non-power-of-two beat with write-back must fail")
	}
	// Without write-back, AlignViaWriteBack must refuse.
	prog := isa.MustEncodeProtein(bio.ProtSeq{bio.Met})
	runner, err := NewNetlistRunner(NetlistConfig{QueryElems: 3, Beat: 4, Threshold: 1}, prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runner.AlignViaWriteBack(make(bio.NucSeq, 10)); err == nil {
		t.Error("missing WB unit must error")
	}
}

func TestBuildWriteBackErrors(t *testing.T) {
	n := rtl.New("wb")
	hits := n.InputBus("h", 3) // not a power of two
	if _, err := BuildWriteBack(n, hits, make([][]rtl.Signal, 3), rtl.Zero, rtl.Zero, 4, 2); err == nil {
		t.Error("non-power-of-two width must fail")
	}
	hits4 := n.InputBus("h4", 4)
	if _, err := BuildWriteBack(n, hits4, make([][]rtl.Signal, 3), rtl.Zero, rtl.Zero, 4, 2); err == nil {
		t.Error("score count mismatch must fail")
	}
}

// TestWriteBackUnitStandalone drives the WB block directly with synthetic
// hit vectors and checks record contents and ordering.
func TestWriteBackUnitStandalone(t *testing.T) {
	n := rtl.New("wbu")
	hits := n.InputBus("hits", 4)
	scores := make([][]rtl.Signal, 4)
	for k := range scores {
		scores[k] = n.InputBus("s", 4)
	}
	hv := n.Input("hv")
	pop := n.Input("pop")
	wb, err := BuildWriteBack(n, hits, scores, hv, pop, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := rtl.NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}

	// Present one beat with hits at k=1 and k=3, scores 5 and 9.
	sim.SetBus(hits, 0b1010)
	sim.SetBus(scores[1], 5)
	sim.SetBus(scores[3], 9)
	sim.Set(hv, 1)
	sim.Step() // latch pending + scores; counter 0 -> 1
	sim.Set(hv, 0)
	sim.Step() // first record pushes into FIFO

	type rec struct{ k, beat, score int }
	var got []rec
	for guard := 0; guard < 20; guard++ {
		sim.Eval()
		if sim.Get(wb.RecValid) == 1 {
			raw := sim.GetBus(wb.RecPos)
			got = append(got, rec{
				k:     int(raw & 3),
				beat:  int(raw >> 2),
				score: int(sim.GetBus(wb.RecScore)),
			})
			sim.Set(pop, 1)
		} else {
			sim.Set(pop, 0)
			if sim.Get(wb.Busy) == 0 && len(got) == 2 {
				break
			}
		}
		sim.Step()
	}
	want := []rec{{k: 1, beat: 0, score: 5}, {k: 3, beat: 0, score: 9}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("records %v, want %v", got, want)
	}
	if sim.Get(wb.Overflow) != 0 {
		t.Error("no overflow expected")
	}
}

// TestWriteBackOverflowSticky: presenting a second beat while the first is
// still draining must latch the overflow flag.
func TestWriteBackOverflowSticky(t *testing.T) {
	n := rtl.New("wbo")
	hits := n.InputBus("hits", 4)
	scores := make([][]rtl.Signal, 4)
	for k := range scores {
		scores[k] = n.InputBus("s", 2)
	}
	hv := n.Input("hv")
	pop := n.Input("pop")
	wb, err := BuildWriteBack(n, hits, scores, hv, pop, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := rtl.NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	sim.SetBus(hits, 0b1111)
	sim.Set(hv, 1)
	sim.Step() // beat 0 latched
	// Immediately present beat 1 while 4 hits are pending.
	sim.Step()
	sim.Set(hv, 0)
	sim.Eval()
	if sim.Get(wb.Overflow) != 1 {
		t.Error("overflow must latch")
	}
	// Sticky: stays up.
	sim.Run(5)
	sim.Eval()
	if sim.Get(wb.Overflow) != 1 {
		t.Error("overflow must be sticky")
	}
}
