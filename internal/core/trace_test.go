package core

import (
	"math/rand"
	"strings"
	"testing"

	"fabp/internal/bio"
	"fabp/internal/isa"
	"fabp/internal/rtl"
)

// TestRunnerTraceToTestbench records a real alignment run and emits the
// self-checking Verilog testbench alongside the module.
func TestRunnerTraceToTestbench(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	p := bio.RandomProtSeq(rng, 2)
	prog := isa.MustEncodeProtein(p)
	cfg := NetlistConfig{QueryElems: len(prog), Beat: 4, Threshold: 4}
	runner, err := NewNetlistRunner(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	rec := rtl.NewTraceRecorder(runner.Netlist())
	runner.AttachRecorder(rec)
	ref := bio.RandomNucSeq(rng, 32)
	hits := runner.Align(ref)
	runner.AttachRecorder(nil)

	// 1 load + beats + drain cycles captured.
	wantCycles := 1 + (len(ref)+cfg.Beat-1)/cfg.Beat + PipelineDepth
	if rec.Cycles() != wantCycles {
		t.Fatalf("captured %d cycles, want %d", rec.Cycles(), wantCycles)
	}

	var mod, tb strings.Builder
	if err := rtl.EmitVerilog(&mod, runner.Netlist()); err != nil {
		t.Fatal(err)
	}
	if err := rec.EmitTestbench(&tb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"module fabp_q6_b4_tb;", "stim[0]", "TESTBENCH PASS", "$finish"} {
		if !strings.Contains(tb.String(), want) {
			t.Errorf("testbench missing %q", want)
		}
	}
	// The trace is consistent regardless of hit count, but re-running
	// without the recorder must give identical hits.
	again := runner.Align(ref)
	if len(again) != len(hits) {
		t.Error("recorder changed results")
	}
}
