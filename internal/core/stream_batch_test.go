package core

import (
	"math/rand"
	"reflect"
	"testing"

	"fabp/internal/axi"
	"fabp/internal/bio"
	"fabp/internal/isa"
)

// TestAlignStreamEqualsAlign: beat-chunked scoring must reproduce the flat
// scan exactly, for beats smaller and larger than the query.
func TestAlignStreamEqualsAlign(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, beat := range []int{4, 16, 256, 1000} {
		for trial := 0; trial < 5; trial++ {
			p := bio.RandomProtSeq(rng, 2+rng.Intn(10))
			prog := isa.MustEncodeProtein(p)
			e, _ := NewEngine(prog, len(prog)/2)
			ref := bio.RandomNucSeq(rng, 50+rng.Intn(500))
			flat := e.Align(ref)
			streamed, stats := e.AlignStream(ref, StreamConfig{Beat: beat})
			if !reflect.DeepEqual(flat, streamed) {
				t.Fatalf("beat %d trial %d: %v != %v", beat, trial, flat, streamed)
			}
			wantBeats := (len(ref) + beat - 1) / beat
			if stats.Beats != wantBeats {
				t.Fatalf("beats %d, want %d", stats.Beats, wantBeats)
			}
		}
	}
}

func TestAlignStreamCycleAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	p := bio.RandomProtSeq(rng, 4)
	e, _ := NewEngine(isa.MustEncodeProtein(p), 6)
	ref := bio.RandomNucSeq(rng, 10_000)

	_, ideal := e.AlignStream(ref, StreamConfig{Beat: 256, Iterations: 1, Stall: axi.NoStall{}})
	if ideal.Cycles != ideal.Beats+PipelineDepth {
		t.Errorf("ideal cycles %d, want %d", ideal.Cycles, ideal.Beats+PipelineDepth)
	}
	_, seg := e.AlignStream(ref, StreamConfig{Beat: 256, Iterations: 4, Stall: axi.NoStall{}})
	if seg.Cycles != 4*seg.Beats+PipelineDepth {
		t.Errorf("segmented cycles %d, want %d", seg.Cycles, 4*seg.Beats+PipelineDepth)
	}
	if seg.ComputeCycles != 3*seg.Beats {
		t.Errorf("compute-bound cycles %d", seg.ComputeCycles)
	}
	// Stalls must not change hits.
	h1, _ := e.AlignStream(ref, StreamConfig{Beat: 256, Stall: axi.NewRandomStall(0.3, 2, 5)})
	h2, _ := e.AlignStream(ref, StreamConfig{Beat: 256, Stall: axi.NoStall{}})
	if !reflect.DeepEqual(h1, h2) {
		t.Error("stall model changed results")
	}
	// Short reference: no hits, stats still sane.
	hits, stats := e.AlignStream(bio.NucSeq{bio.A}, StreamConfig{Beat: 8})
	if hits != nil || stats.Beats != 1 {
		t.Errorf("short ref: %v %+v", hits, stats)
	}
	// Defaults: zero config fields.
	_, stats = e.AlignStream(ref, StreamConfig{})
	if stats.Beats != (len(ref)+255)/256 {
		t.Error("default beat should be 256")
	}
}

func TestBatchMatchesIndividualEngines(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	ref := bio.RandomNucSeq(rng, 200_000)
	var progs []isa.Program
	var thresholds []int
	for i := 0; i < 6; i++ {
		p := bio.RandomProtSeq(rng, 3+rng.Intn(12))
		prog := isa.MustEncodeProtein(p)
		progs = append(progs, prog)
		thresholds = append(thresholds, len(prog)*2/3)
	}
	batch, err := NewBatch(progs, thresholds)
	if err != nil {
		t.Fatal(err)
	}
	batch.SetParallelism(4)
	got := batch.Align(ref)
	for i := range progs {
		e, _ := NewEngine(progs[i], thresholds[i])
		want := e.Align(ref)
		if len(want) == 0 && len(got[i]) == 0 {
			continue
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("query %d: batch %d hits, individual %d", i, len(got[i]), len(want))
		}
	}
}

func TestBatchValidation(t *testing.T) {
	if _, err := NewBatch(nil, nil); err == nil {
		t.Error("empty batch must fail")
	}
	prog := isa.MustEncodeProtein(bio.ProtSeq{bio.Met})
	if _, err := NewBatch([]isa.Program{prog}, []int{1, 2}); err == nil {
		t.Error("length mismatch must fail")
	}
	if _, err := NewBatch([]isa.Program{prog}, []int{99}); err == nil {
		t.Error("bad threshold must fail")
	}
	b, err := NewBatchUniform([]isa.Program{prog}, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 1 {
		t.Error("Len")
	}
	b.SetParallelism(0) // clamps
}

func TestBatchBestHits(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	ref, genes := bio.SyntheticReference(rng, 30_000, 2, 30)
	var progs []isa.Program
	for _, g := range genes {
		p := g.Protein
		for i := range p {
			if p[i] == bio.Ser {
				p[i] = bio.Gly
			}
		}
		// Re-plant with Ser removed so the best hit is perfect.
		copy(ref[g.Pos:], bio.EncodeGene(rng, p))
		progs = append(progs, isa.MustEncodeProtein(p))
	}
	batch, _ := NewBatchUniform(progs, 0.9)
	best := batch.BestHits(ref)
	for i, g := range genes {
		if best[i].Pos != g.Pos {
			t.Errorf("query %d best at %d, want %d", i, best[i].Pos, g.Pos)
		}
	}
	// Too-short reference marks -1.
	tiny := batch.BestHits(bio.NucSeq{bio.A})
	if tiny[0].Pos != -1 {
		t.Error("short ref must yield -1")
	}
}
