package core

import (
	"fmt"
	"math"
)

// ThresholdFromFraction converts a threshold fraction of the maximum score
// into an absolute score threshold. The fraction must lie in (0, 1]; the
// product rounds to the nearest integer so float artifacts cannot shift
// the threshold (naive truncation turns 0.9 × 10 = 8.999… into 8, a full
// point below the intended 9). Every fraction-threshold path in the
// repository routes through this one helper.
func ThresholdFromFraction(frac float64, maxScore int) (int, error) {
	if frac <= 0 || frac > 1 || math.IsNaN(frac) {
		return 0, fmt.Errorf("core: threshold fraction %v outside (0,1]", frac)
	}
	t := int(math.Round(frac * float64(maxScore)))
	if t > maxScore {
		t = maxScore
	}
	return t, nil
}

// This file provides threshold statistics for the "user-defined threshold"
// the paper leaves unspecified: the exact null distribution of a window's
// score against a uniform random reference, and a threshold suggestion for
// a target expected false-positive count.

// ScoreDistribution returns the probability mass function of one window's
// alignment score under a uniform i.i.d. random reference: pmf[s] =
// P(score = s), length QueryElems+1.
//
// Per-element match probabilities come from each element's 64-context
// truth table; elements are treated as independent. For Type I/II elements
// that is trivially exact (each match depends only on its own reference
// nucleotide). For FabP's Type III templates it turns out to be exact as
// well: every dependent bit S splits each conditioning nucleotide set
// evenly (e.g. Arg's pos-0 set {A,C} splits 1:1 on the bit its pos-2
// comparison reads), so the conditional and marginal match probabilities
// coincide — the test suite proves this by exhaustive window enumeration.
func (e *Engine) ScoreDistribution() []float64 {
	pmf := make([]float64, 1, len(e.prog)+1)
	pmf[0] = 1
	for _, tab := range e.matchTab {
		ones := 0
		for _, v := range tab {
			ones += int(v)
		}
		p := float64(ones) / 64
		next := make([]float64, len(pmf)+1)
		for s, q := range pmf {
			next[s] += q * (1 - p)
			next[s+1] += q * p
		}
		pmf = next
	}
	return pmf
}

// TailProbability returns P(score >= t) under the null distribution.
func (e *Engine) TailProbability(t int) float64 {
	pmf := e.ScoreDistribution()
	if t < 0 {
		t = 0
	}
	var tail float64
	for s := t; s < len(pmf); s++ {
		tail += pmf[s]
	}
	return tail
}

// ExpectedRandomHits returns the expected number of threshold crossings a
// scan of refLen random nucleotides produces by chance.
func (e *Engine) ExpectedRandomHits(refLen int) float64 {
	n := refLen - len(e.prog) + 1
	if n <= 0 {
		return 0
	}
	return float64(n) * e.TailProbability(e.threshold)
}

// SuggestThreshold returns the smallest threshold t such that the expected
// number of chance hits over a refLen scan is at most maxExpectedFP.
func (e *Engine) SuggestThreshold(refLen int, maxExpectedFP float64) (int, error) {
	if maxExpectedFP <= 0 {
		return 0, fmt.Errorf("core: target false-positive count must be positive")
	}
	n := refLen - len(e.prog) + 1
	if n <= 0 {
		return 0, fmt.Errorf("core: reference shorter than the query")
	}
	pmf := e.ScoreDistribution()
	// Walk thresholds from high to low accumulating the tail.
	tail := 0.0
	best := -1
	for t := len(pmf) - 1; t >= 0; t-- {
		tail += pmf[t]
		if float64(n)*tail <= maxExpectedFP {
			best = t
		} else {
			break
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("core: no threshold meets %.3g expected false positives over %d nt",
			maxExpectedFP, refLen)
	}
	return best, nil
}

// EValue returns the expected number of random windows scoring >= score in
// a refLen-nucleotide scan — the significance FabP's write-back records
// can be annotated with (analogous to BLAST E-values, but from the exact
// null distribution rather than Karlin-Altschul asymptotics).
func (e *Engine) EValue(score, refLen int) float64 {
	n := refLen - len(e.prog) + 1
	if n <= 0 {
		return 0
	}
	return float64(n) * e.TailProbability(score)
}

// MeanScore returns the null distribution's mean — useful as a sanity
// floor when picking thresholds (random windows score ≈0.44 per element).
func (e *Engine) MeanScore() float64 {
	mean := 0.0
	for _, tab := range e.matchTab {
		ones := 0
		for _, v := range tab {
			ones += int(v)
		}
		mean += float64(ones) / 64
	}
	return mean
}
