package core

import (
	"math/rand"
	"reflect"
	"testing"

	"fabp/internal/backtrans"
	"fabp/internal/bio"
	"fabp/internal/isa"
	"fabp/internal/rtl"
)

// TestComparatorCellExhaustive proves the 2-LUT hardware cell equal to the
// instruction matcher for every valid element and every reference context.
func TestComparatorCellExhaustive(t *testing.T) {
	n := rtl.New("cmp")
	q := [6]rtl.Signal{}
	for i := range q {
		q[i] = n.Input("q")
	}
	ref := RefBit{n.Input("r0"), n.Input("r1")}
	p1 := RefBit{n.Input("p10"), n.Input("p11")}
	p2 := RefBit{n.Input("p20"), n.Input("p21")}
	out := ComparatorCell(n, q, ref, p1, p2)
	if n.Stats().LUTs != CompareLUTsPerElement {
		t.Fatalf("comparator uses %d LUTs, paper says %d", n.Stats().LUTs, CompareLUTsPerElement)
	}
	sim, err := rtl.NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}

	var elems []backtrans.Element
	for nt := bio.Nucleotide(0); nt < 4; nt++ {
		elems = append(elems, backtrans.Exact(nt))
	}
	for c := backtrans.Condition(0); c <= backtrans.CondAC; c++ {
		elems = append(elems, backtrans.Conditional(c))
	}
	for f := backtrans.Function(0); f <= backtrans.FuncD; f++ {
		elems = append(elems, backtrans.Dependent(f))
	}
	for _, e := range elems {
		ins := isa.MustEncode(e)
		for i := range q {
			sim.Set(q[i], ins.Q(uint(i)))
		}
		for r := bio.Nucleotide(0); r < 4; r++ {
			for a := bio.Nucleotide(0); a < 4; a++ {
				for b := bio.Nucleotide(0); b < 4; b++ {
					sim.Set(ref[0], r.Bit(0))
					sim.Set(ref[1], r.Bit(1))
					sim.Set(p1[0], a.Bit(0))
					sim.Set(p1[1], a.Bit(1))
					sim.Set(p2[0], b.Bit(0))
					sim.Set(p2[1], b.Bit(1))
					sim.Eval()
					want := uint8(0)
					if ins.Matches(r, a, b) {
						want = 1
					}
					if got := sim.Get(out); got != want {
						t.Fatalf("element %v ref=%v p1=%v p2=%v: hw=%d sw=%d", e, r, a, b, got, want)
					}
				}
			}
		}
	}
}

func TestConstInstructionSignals(t *testing.T) {
	ins := isa.MustEncode(backtrans.Dependent(backtrans.FuncArg))
	sigs := ConstInstructionSignals(ins)
	for i, s := range sigs {
		want := rtl.Zero
		if ins.Q(uint(i)) == 1 {
			want = rtl.One
		}
		if s != want {
			t.Errorf("bit %d wrong", i)
		}
	}
}

func TestNetlistConfigValidate(t *testing.T) {
	good := NetlistConfig{QueryElems: 6, Beat: 4, Threshold: 5}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	bad := []NetlistConfig{
		{QueryElems: 0, Beat: 4},
		{QueryElems: 6, Beat: 0},
		{QueryElems: 6, Beat: 4, Threshold: -1},
		{QueryElems: 6, Beat: 4, Threshold: 7},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	if _, _, err := BuildNetlist(bad[0]); err == nil {
		t.Error("BuildNetlist must propagate validation errors")
	}
}

func TestNetlistRunnerRejectsLengthMismatch(t *testing.T) {
	prog := isa.MustEncodeProtein(bio.ProtSeq{bio.Met})
	if _, err := NewNetlistRunner(NetlistConfig{QueryElems: 6, Beat: 4, Threshold: 0}, prog); err == nil {
		t.Error("length mismatch must fail")
	}
}

// TestNetlistMatchesEngine is the central hardware-correctness proof: the
// cycle-accurate simulation of the generated FabP netlist produces exactly
// the hits of the software Engine, across query lengths, beat widths,
// thresholds and random references.
func TestNetlistMatchesEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := []struct {
		residues, beat int
	}{
		{2, 4},
		{3, 8},
		{4, 4},
		{5, 16},
		{4, 3}, // beat smaller than query
	}
	for _, tc := range cases {
		p := bio.RandomProtSeq(rng, tc.residues)
		prog := isa.MustEncodeProtein(p)
		threshold := len(prog) / 2
		cfg := NetlistConfig{
			QueryElems: len(prog),
			Beat:       tc.beat,
			Threshold:  threshold,
		}
		runner, err := NewNetlistRunner(cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		engine, err := NewEngine(prog, threshold)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 3; trial++ {
			ref := bio.RandomNucSeq(rng, 40+rng.Intn(100))
			hw := runner.Align(ref)
			sw := engine.Align(ref)
			if !reflect.DeepEqual(hw, sw) {
				t.Fatalf("res=%d beat=%d trial=%d: hw %v != sw %v",
					tc.residues, tc.beat, trial, hw, sw)
			}
		}
	}
}

// TestNetlistStallInsensitivity injects random AXI stalls; results must be
// bit-identical, only cycle counts change (§III-C: "all the stages of the
// FabP will be stalled").
func TestNetlistStallInsensitivity(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	p := bio.RandomProtSeq(rng, 3)
	prog := isa.MustEncodeProtein(p)
	cfg := NetlistConfig{QueryElems: len(prog), Beat: 8, Threshold: 4}
	runner, err := NewNetlistRunner(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	ref := bio.RandomNucSeq(rng, 120)
	clean := runner.Align(ref)
	cleanCycles := runner.Cycles()
	numBeats := (len(ref) + cfg.Beat - 1) / cfg.Beat
	stalls := make([]int, numBeats)
	total := 0
	for i := range stalls {
		stalls[i] = rng.Intn(4)
		total += stalls[i]
	}
	stalled := runner.AlignWithStalls(ref, stalls)
	if !reflect.DeepEqual(clean, stalled) {
		t.Fatalf("stalls changed results: %v vs %v", clean, stalled)
	}
	if runner.Cycles() != cleanCycles+total {
		t.Errorf("cycles %d, want %d+%d", runner.Cycles(), cleanCycles, total)
	}
}

// TestNetlistPerfectHit plants an exact gene and checks the hardware
// reports a full score at the right position.
func TestNetlistPerfectHit(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	p := bio.ProtSeq{bio.Met, bio.Lys, bio.Trp, bio.Glu}
	gene := bio.EncodeGene(rng, p)
	ref := bio.RandomNucSeq(rng, 64)
	pos := 17
	copy(ref[pos:], gene)
	prog := isa.MustEncodeProtein(p)
	cfg := NetlistConfig{QueryElems: len(prog), Beat: 8, Threshold: len(prog)}
	runner, err := NewNetlistRunner(cfg, prog)
	if err != nil {
		t.Fatal(err)
	}
	hits := runner.Align(ref)
	found := false
	for _, h := range hits {
		if h.Pos == pos {
			found = true
			if h.Score != len(prog) {
				t.Errorf("score %d, want %d", h.Score, len(prog))
			}
		}
	}
	if !found {
		t.Errorf("planted gene not found in %v", hits)
	}
}

// TestNetlistTreeAdderVariantEquivalent: the pop-counter variant must not
// change results.
func TestNetlistTreeAdderVariantEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	p := bio.RandomProtSeq(rng, 3)
	prog := isa.MustEncodeProtein(p)
	ref := bio.RandomNucSeq(rng, 80)
	var results [][]Hit
	for _, v := range []PopVariant{PopLUTOptimized, PopTree} {
		cfg := NetlistConfig{QueryElems: len(prog), Beat: 4, Threshold: 3, Pop: v}
		runner, err := NewNetlistRunner(cfg, prog)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, runner.Align(ref))
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Error("pop-counter variant changed results")
	}
}

// TestNetlistPaddedShortQuery runs a short query on a larger fixed build
// via D-padding (§IV-A: a FabP-N bitstream serves any query ≤ N): interior
// hits must match the unpadded engine with the bias-adjusted threshold.
func TestNetlistPaddedShortQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	short := bio.RandomProtSeq(rng, 2) // 6 elements
	prog := isa.MustEncodeProtein(short)
	const buildElems = 12 // a FabP-4 build serving a 2-residue query
	threshold := 4
	padded, bias, err := prog.Pad(buildElems)
	if err != nil {
		t.Fatal(err)
	}
	runner, err := NewNetlistRunner(NetlistConfig{
		QueryElems: buildElems, Beat: 8, Threshold: threshold + bias,
	}, padded)
	if err != nil {
		t.Fatal(err)
	}
	engine, _ := NewEngine(prog, threshold)
	ref := bio.RandomNucSeq(rng, 150)

	hw := runner.Align(ref)
	sw := engine.Align(ref)
	// The padded build cannot report windows whose padded extent runs past
	// the reference end; compare the interior.
	maxPos := len(ref) - buildElems
	var swInterior []Hit
	for _, h := range sw {
		if h.Pos <= maxPos {
			swInterior = append(swInterior, Hit{Pos: h.Pos, Score: h.Score + bias})
		}
	}
	if len(hw) != len(swInterior) {
		t.Fatalf("padded build %d hits, engine interior %d", len(hw), len(swInterior))
	}
	for i := range hw {
		if hw[i] != swInterior[i] {
			t.Fatalf("hit %d: %+v != %+v", i, hw[i], swInterior[i])
		}
	}
}

// TestNetlistResourceShape sanity-checks the structural cost model that the
// fpga package's analytic estimator is calibrated against.
func TestNetlistResourceShape(t *testing.T) {
	cfg := NetlistConfig{QueryElems: 9, Beat: 4, Threshold: 5}
	n, _, err := BuildNetlist(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats := n.Stats()
	// Comparators alone: 2 LUTs × elems × instances.
	minLUTs := CompareLUTsPerElement * cfg.QueryElems * cfg.Beat
	if stats.LUTs < minLUTs {
		t.Errorf("LUTs %d below comparator floor %d", stats.LUTs, minLUTs)
	}
	// FFs: query (6/elem) + refbuf (2×(elems+beat)) + match regs
	// (elems×beat) + valid pipe (3) + score regs.
	minFFs := 6*cfg.QueryElems + 2*(cfg.QueryElems+cfg.Beat) + cfg.QueryElems*cfg.Beat + 3
	if stats.FFs < minFFs {
		t.Errorf("FFs %d below floor %d", stats.FFs, minFFs)
	}
	t.Logf("q=%d beat=%d: %d LUTs, %d FFs", cfg.QueryElems, cfg.Beat, stats.LUTs, stats.FFs)
}

// TestNetlistVerilogEmission smoke-tests Verilog generation of a full
// accelerator.
func TestNetlistVerilogEmission(t *testing.T) {
	cfg := NetlistConfig{QueryElems: 6, Beat: 2, Threshold: 4}
	n, _, err := BuildNetlist(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb sbWriter
	if err := rtl.EmitVerilog(&sb, n); err != nil {
		t.Fatal(err)
	}
	if len(sb) < 1000 {
		t.Error("verilog suspiciously small")
	}
}

type sbWriter []byte

func (s *sbWriter) Write(p []byte) (int, error) {
	*s = append(*s, p...)
	return len(p), nil
}
