package core

import "fabp/internal/rtl"

// This file implements the paper's hand-crafted Pop-Counter (§III-D,
// Fig. 4) and the naive tree-adder pop-counter it is evaluated against.
// Pop-counters dominate FabP's area after the comparators — there is one
// per alignment instance — so the paper optimizes them at LUT level and
// reports ~20 % area reduction over a plain HDL tree adder.

// countOf6 produces the 3-bit population count of up to six bits using one
// LUT per output bit — the building block of Pop36's first stage ("six
// groups of three-LUTs that share six inputs").
func countOf6(n *rtl.Netlist, bits []rtl.Signal) []rtl.Signal {
	if len(bits) == 0 {
		return []rtl.Signal{rtl.Zero}
	}
	if len(bits) == 1 {
		return []rtl.Signal{bits[0]}
	}
	if len(bits) > 6 {
		panic("core: countOf6 takes at most 6 bits")
	}
	var in [6]rtl.Signal
	for i := range in {
		if i < len(bits) {
			in[i] = bits[i]
		} else {
			in[i] = rtl.Zero
		}
	}
	width := 2
	if len(bits) > 3 {
		width = 3
	}
	out := make([]rtl.Signal, width)
	for b := 0; b < width; b++ {
		var init uint64
		for idx := uint(0); idx < 64; idx++ {
			pop := uint(0)
			for k := uint(0); k < uint(len(bits)); k++ {
				pop += idx >> k & 1
			}
			if pop>>uint(b)&1 == 1 {
				init |= 1 << idx
			}
		}
		out[b] = n.LUT6(init, in[0], in[1], in[2], in[3], in[4], in[5])
	}
	return out
}

// Pop36 is the paper's optimized 36-bit population counter. The first stage
// compresses the 36 inputs into six 3-bit counts (18 LUTs). The second
// stage sums the six counts "according to their bit order": the six bit-0
// lines are themselves popcounted (3 LUTs), likewise bit-1 and bit-2, and
// the three column counts are recombined with their positional weights by a
// small ripple adder. Total: 27 LUTs + the final adder.
func Pop36(n *rtl.Netlist, bits []rtl.Signal) []rtl.Signal {
	if len(bits) != 36 {
		panic("core: Pop36 takes exactly 36 bits")
	}
	// Stage 1: six count-of-6 groups.
	counts := make([][]rtl.Signal, 6)
	for g := 0; g < 6; g++ {
		counts[g] = countOf6(n, bits[6*g:6*g+6])
	}
	// Stage 2: column-wise compression.
	column := func(bit int) []rtl.Signal {
		col := make([]rtl.Signal, 6)
		for g := 0; g < 6; g++ {
			col[g] = counts[g][bit]
		}
		return countOf6(n, col)
	}
	c0 := column(0)               // weight 1
	c1 := shiftLeft(column(1), 1) // weight 2
	c2 := shiftLeft(column(2), 2) // weight 4
	// Sum: max value 36 fits in 6 bits.
	sum := n.AddBus(n.AddBus(c0, c1), c2)
	return trimWidth(sum, 6)
}

// shiftLeft multiplies a bus by 2^k by prepending constant-zero bits.
func shiftLeft(bus []rtl.Signal, k int) []rtl.Signal {
	out := make([]rtl.Signal, k, k+len(bus))
	for i := range out {
		out[i] = rtl.Zero
	}
	return append(out, bus...)
}

// trimWidth drops constant-zero high bits beyond width (sums are padded by
// ripple carries that cannot assert for popcount value ranges).
func trimWidth(bus []rtl.Signal, width int) []rtl.Signal {
	if len(bus) <= width {
		return bus
	}
	return bus[:width]
}

// PopCountOptimized builds the paper's pop-counter for any width: full
// Pop36 blocks plus a count-of-6 stage for the tail, combined with a
// balanced adder tree. Used per alignment instance with width = 3·Lq.
func PopCountOptimized(n *rtl.Netlist, bits []rtl.Signal) []rtl.Signal {
	if len(bits) == 0 {
		return []rtl.Signal{rtl.Zero}
	}
	var partial [][]rtl.Signal
	i := 0
	for ; i+36 <= len(bits); i += 36 {
		partial = append(partial, Pop36(n, bits[i:i+36]))
	}
	for ; i < len(bits); i += 6 {
		end := i + 6
		if end > len(bits) {
			end = len(bits)
		}
		partial = append(partial, countOf6(n, bits[i:end]))
	}
	return n.AddBusMany(partial...)
}

// PopCountTreeAdder is the baseline the paper compares against: a plain
// HDL-style binary adder tree that pairs bits into 1-bit numbers and keeps
// adding. It is functionally identical to PopCountOptimized and ~20 %
// larger, which the popcount ablation experiment measures.
func PopCountTreeAdder(n *rtl.Netlist, bits []rtl.Signal) []rtl.Signal {
	if len(bits) == 0 {
		return []rtl.Signal{rtl.Zero}
	}
	buses := make([][]rtl.Signal, len(bits))
	for i, b := range bits {
		buses[i] = []rtl.Signal{b}
	}
	for len(buses) > 1 {
		var next [][]rtl.Signal
		for i := 0; i+1 < len(buses); i += 2 {
			next = append(next, n.AddBus(buses[i], buses[i+1]))
		}
		if len(buses)%2 == 1 {
			next = append(next, buses[len(buses)-1])
		}
		buses = next
	}
	return buses[0]
}

// BuildPopCountPipelined is the paper's "pipelined Pop-Counter" (Fig. 4):
// the same Pop36 decomposition with a register stage after the first-level
// group counts and another after the column compression, cutting the
// combinational depth to at most two LUT levels per stage. It returns the
// sum bus and the added register latency in cycles. All registers share
// the enable.
func BuildPopCountPipelined(n *rtl.Netlist, bits []rtl.Signal, en rtl.Signal) (sum []rtl.Signal, latency int) {
	if len(bits) == 0 {
		return []rtl.Signal{rtl.Zero}, 0
	}
	// Stage 1: group counts of 6, registered.
	var groups [][]rtl.Signal
	for i := 0; i < len(bits); i += 6 {
		end := i + 6
		if end > len(bits) {
			end = len(bits)
		}
		groups = append(groups, n.RegisterBus(countOf6(n, bits[i:end]), en))
	}
	// Stage 2+: registered binary adder tree over the group counts.
	level := groups
	stages := 1
	for len(level) > 1 {
		var next [][]rtl.Signal
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, n.RegisterBus(n.AddBus(level[i], level[i+1]), en))
		}
		if len(level)%2 == 1 {
			// Odd bus rides through a register to stay phase-aligned.
			next = append(next, n.RegisterBus(level[len(level)-1], en))
		}
		level = next
		stages++
	}
	return level[0], stages
}

// PopVariant selects a pop-counter implementation for ablation studies.
type PopVariant int

const (
	// PopLUTOptimized is the paper's Pop36-based design.
	PopLUTOptimized PopVariant = iota
	// PopTree is the naive tree-adder HDL description.
	PopTree
)

// String names the variant.
func (v PopVariant) String() string {
	if v == PopTree {
		return "tree-adder"
	}
	return "lut-optimized"
}

// BuildPopCount dispatches on the variant.
func BuildPopCount(n *rtl.Netlist, bits []rtl.Signal, v PopVariant) []rtl.Signal {
	if v == PopTree {
		return PopCountTreeAdder(n, bits)
	}
	return PopCountOptimized(n, bits)
}
