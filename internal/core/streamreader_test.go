package core

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"fabp/internal/bio"
	"fabp/internal/isa"
)

// TestAlignReaderMatchesAlign: chunked streaming over an io.Reader must
// reproduce the in-memory scan exactly, including across the 1 MiB chunk
// boundary (context and carry correctness).
func TestAlignReaderMatchesAlign(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	p := bio.RandomProtSeq(rng, 6)
	prog := isa.MustEncodeProtein(p)
	e, _ := NewEngine(prog, len(prog)*2/3)
	// 2.5 MiB of letters forces two chunk boundaries.
	ref := bio.RandomNucSeq(rng, 2_500_000)
	want := e.Align(ref)
	got, err := e.AlignReaderAll(strings.NewReader(ref.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("streamed %d hits, in-memory %d", len(got), len(want))
	}
}

func TestAlignReaderPlantedAtBoundary(t *testing.T) {
	// Plant perfect genes straddling the chunk boundary itself.
	rng := rand.New(rand.NewSource(72))
	p := bio.ProtSeq{bio.Met, bio.Lys, bio.Trp, bio.Glu, bio.His}
	prog := isa.MustEncodeProtein(p)
	ref := bio.RandomNucSeq(rng, 1<<20+3000)
	gene := bio.EncodeGene(rng, p)
	// Non-overlapping (gene is 15 nt), straddling the boundary both ways.
	positions := []int{1<<20 - 45, 1<<20 - 25, 1<<20 - 7, 1<<20 + 15}
	for _, pos := range positions {
		copy(ref[pos:], gene)
	}
	e, _ := NewEngine(prog, len(prog))
	hits, err := e.AlignReaderAll(strings.NewReader(ref.DNAString()))
	if err != nil {
		t.Fatal(err)
	}
	found := map[int]bool{}
	for _, h := range hits {
		found[h.Pos] = true
	}
	for _, pos := range positions {
		if !found[pos] {
			t.Errorf("planted gene at %d lost at the chunk boundary", pos)
		}
	}
	// And the streamed result equals the in-memory result entirely.
	want := e.Align(ref)
	if !reflect.DeepEqual(hits, want) {
		t.Error("streamed hits differ from in-memory scan")
	}
}

func TestAlignReaderWhitespaceAndCase(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	p := bio.RandomProtSeq(rng, 3)
	prog := isa.MustEncodeProtein(p)
	e, _ := NewEngine(prog, 0)
	ref := bio.RandomNucSeq(rng, 200)
	// Interleave whitespace and lowercase.
	var sb strings.Builder
	for i, nt := range ref {
		sb.WriteByte(nt.DNALetter() | 0x20) // lowercase
		if i%60 == 59 {
			sb.WriteString("\r\n")
		}
	}
	got, err := e.AlignReaderAll(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, e.Align(ref)) {
		t.Error("whitespace/case handling changed results")
	}
}

func TestAlignReaderErrors(t *testing.T) {
	prog := isa.MustEncodeProtein(bio.ProtSeq{bio.Met})
	e, _ := NewEngine(prog, 0)
	if _, err := e.AlignReaderAll(strings.NewReader("ACGX")); err == nil {
		t.Error("invalid letter must fail")
	}
	// Callback error propagates and stops the scan.
	boom := errors.New("stop")
	err := e.AlignReader(strings.NewReader("ACGUACGU"), func(Hit) error { return boom })
	if !errors.Is(err, boom) {
		t.Errorf("callback error lost: %v", err)
	}
	// Empty stream: no hits, no error.
	hits, err := e.AlignReaderAll(strings.NewReader(""))
	if err != nil || hits != nil {
		t.Errorf("empty stream: %v %v", hits, err)
	}
}

func TestEValue(t *testing.T) {
	prog := isa.MustEncodeProtein(bio.ProtSeq{bio.Met, bio.Trp})
	e, _ := NewEngine(prog, 0)
	// Perfect score: P = 0.25^6, E over 1001-window scan.
	want := 1001.0 * 1.0 / (1 << 12)
	if got := e.EValue(6, 1006); got < want*0.999 || got > want*1.001 {
		t.Errorf("EValue = %g, want %g", got, want)
	}
	if e.EValue(3, 1) != 0 {
		t.Error("short reference must have E=0")
	}
	if e.EValue(0, 1006) != 1001 {
		t.Error("score 0 is certain: E = window count")
	}
}
