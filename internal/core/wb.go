package core

import (
	"fmt"

	"fabp/internal/rtl"
)

// WriteBackPorts exposes the hit write-back unit (§III-C: "The WB buffer
// writes back all aligned positions to the FPGA DRAM using an AXI bus").
// The unit latches each beat's hit vector and scores, drains them through a
// priority encoder into a staging FIFO, and presents (position, score)
// records on a pop interface — the netlist-level stand-in for the AXI
// write channel.
type WriteBackPorts struct {
	// RecValid is 1 when RecPos/RecScore carry a record.
	RecValid rtl.Signal
	// RecPos is the raw position: low bits = instance index k within the
	// beat, high bits = beat counter. Global window start =
	// beat·Beat + k − (QueryElems−1).
	RecPos []rtl.Signal
	// RecScore is the hit's score bus.
	RecScore []rtl.Signal
	// RecPop (input) consumes the presented record at the next edge.
	RecPop rtl.Signal
	// Busy is 1 while hits of the latched beat are still draining.
	Busy rtl.Signal
	// Overflow latches (sticky) if a new beat's hits arrived while the
	// previous beat was still draining — records were lost and the host
	// must re-run with more drain cycles.
	Overflow rtl.Signal
}

// BuildWriteBack wires the write-back unit onto an accelerator's hit and
// score outputs. beat must be a power of two (positions concatenate
// cleanly); beatBits sets the beat-counter width; fifoDepth the staging
// FIFO depth.
func BuildWriteBack(n *rtl.Netlist, hits []rtl.Signal, scores [][]rtl.Signal,
	hitsValid, recPop rtl.Signal, beatBits, fifoDepth int) (*WriteBackPorts, error) {
	beat := len(hits)
	if beat == 0 || beat&(beat-1) != 0 {
		return nil, fmt.Errorf("core: write-back needs a power-of-two beat, got %d", beat)
	}
	if len(scores) != beat {
		return nil, fmt.Errorf("core: write-back score/hit mismatch")
	}
	kBits := 0
	for 1<<uint(kBits) < beat {
		kBits++
	}
	scoreWidth := len(scores[0])

	// Latch the beat index; the counter increments on each completed beat,
	// so its pre-increment value during the hitsValid cycle IS the index.
	beatCounter := n.Counter(beatBits, hitsValid)
	latchedBeat := n.RegisterBus(beatCounter, hitsValid)

	// Latch scores (they change when the next beat completes).
	latchedScores := make([][]rtl.Signal, beat)
	for k := 0; k < beat; k++ {
		latchedScores[k] = n.RegisterBus(scores[k], hitsValid)
	}

	// Pending hit bits: loaded on hitsValid, cleared one-by-one as records
	// push into the FIFO.
	pending := make([]rtl.Signal, beat)
	setPending := make([]func(rtl.Signal), beat)
	for k := 0; k < beat; k++ {
		pending[k], setPending[k] = n.FeedbackDFF(rtl.One)
	}

	idx, anyPending, grants := n.PriorityEncoderGrants(pending)

	// Record layout: [k bits | beat bits | score bits].
	rec := make([]rtl.Signal, 0, kBits+beatBits+scoreWidth)
	rec = append(rec, idx...)
	rec = append(rec, latchedBeat...)
	rec = append(rec, n.OneHotMux(grants, latchedScores)...)

	fifo := n.BuildFIFO(len(rec), fifoDepth, rec, anyPending, recPop)

	// A push is accepted unless the FIFO is full and not popping.
	accepted := n.And(anyPending, n.Or(n.Not(fifo.Full), recPop))
	for k := 0; k < beat; k++ {
		cleared := n.And(pending[k], n.Not(n.And(grants[k], accepted)))
		setPending[k](n.Mux2(hitsValid, cleared, hits[k]))
	}

	// Sticky overflow: a new beat landed while still draining.
	ovf, setOvf := n.FeedbackDFF(rtl.One)
	setOvf(n.Or(ovf, n.And(hitsValid, anyPending)))

	ports := &WriteBackPorts{
		RecValid: fifo.PopValid,
		RecPos:   fifo.PopData[:kBits+beatBits],
		RecScore: fifo.PopData[kBits+beatBits:],
		RecPop:   recPop,
		Busy:     anyPending,
		Overflow: ovf,
	}
	return ports, nil
}
