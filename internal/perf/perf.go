// Package perf holds the platform performance and energy models behind the
// paper's Fig. 6: the FPGA projection (from internal/fpga), a roofline-style
// model of the authors' CUDA kernel on a GTX 1080Ti, and a pipeline-cost
// model of TBLASTN on an i7-8700K at 1 and 12 threads. Every constant is
// documented with its derivation; none is re-fitted per experiment.
package perf

import (
	"fmt"

	"fabp/internal/axi"
	"fabp/internal/fpga"
)

// Result is one platform's projected execution of a workload: one query of
// QueryResidues amino acids against RefNucleotides database elements.
type Result struct {
	Platform      string
	QueryResidues int
	// Seconds is projected wall-clock time; Watts the draw during it.
	Seconds float64
	Watts   float64
}

// EnergyJoules returns Seconds × Watts.
func (r Result) EnergyJoules() float64 { return r.Seconds * r.Watts }

// String formats the result compactly.
func (r Result) String() string {
	return fmt.Sprintf("%s q=%d: %.4fs @ %.0fW (%.2fJ)",
		r.Platform, r.QueryResidues, r.Seconds, r.Watts, r.EnergyJoules())
}

// FPGA projects FabP on the given device: resources are sized by
// fpga.Size, timing by the beat-level AXI stream model.
func FPGA(dev fpga.Device, queryResidues, refNucleotides int) (Result, error) {
	est := fpga.Size(dev, fpga.Config{QueryElems: 3 * queryResidues})
	if !est.Fits {
		return Result{}, fmt.Errorf("perf: FabP-%d does not fit %s", queryResidues, dev.Name)
	}
	tm := fpga.Time(est, refNucleotides, nil)
	return Result{
		Platform:      "FabP/" + dev.Name,
		QueryResidues: queryResidues,
		Seconds:       tm.Seconds,
		Watts:         est.Power(),
	}, nil
}

// FPGAWithStall is FPGA with an explicit DRAM stall model.
func FPGAWithStall(dev fpga.Device, queryResidues, refNucleotides int, stall axi.StallModel) (Result, error) {
	est := fpga.Size(dev, fpga.Config{QueryElems: 3 * queryResidues})
	if !est.Fits {
		return Result{}, fmt.Errorf("perf: FabP-%d does not fit %s", queryResidues, dev.Name)
	}
	tm := fpga.Time(est, refNucleotides, stall)
	return Result{
		Platform:      "FabP/" + dev.Name,
		QueryResidues: queryResidues,
		Seconds:       tm.Seconds,
		Watts:         est.Power(),
	}, nil
}

// GPU models the authors' hand-optimized CUDA implementation of the same
// substitution-only kernel on a GTX 1080Ti.
type GPU struct {
	Name string
	// CellsPerSec is the sustained element-comparison throughput of the
	// bit-parallel kernel (query elements × reference positions per
	// second). Derivation: FabP-50 evaluates 256 instances × 150 elements
	// at 200 MHz ≈ 7.7e12 cells/s and the paper reports FabP 8.1 % faster
	// than the GPU on average, giving ≈ 7.1e12 for the 1080Ti — about 0.6
	// int-op per cell at its ~11.3 Tops/s, consistent with a 2-bit-packed
	// SIMD-within-register kernel plus reduction overhead.
	CellsPerSec float64
	// LaunchOverheadSec covers transfer/launch per query.
	LaunchOverheadSec float64
	// Watts is the board draw under load (250 W TDP).
	Watts float64
}

// DefaultGPU returns the calibrated GTX 1080Ti model.
func DefaultGPU() GPU {
	return GPU{
		Name:              "GTX 1080Ti",
		CellsPerSec:       7.1e12,
		LaunchOverheadSec: 300e-6,
		Watts:             250,
	}
}

// Time projects one query against a reference.
func (g GPU) Time(queryResidues, refNucleotides int) Result {
	cells := float64(3*queryResidues) * float64(refNucleotides)
	return Result{
		Platform:      "GPU/" + g.Name,
		QueryResidues: queryResidues,
		Seconds:       cells/g.CellsPerSec + g.LaunchOverheadSec,
		Watts:         g.Watts,
	}
}

// CPU models NCBI TBLASTN on an i7-8700K: a per-translated-residue scan
// cost that grows with query length (longer queries seed more neighborhood
// hits and extensions), divided by imperfect thread scaling.
type CPU struct {
	Name    string
	Threads int
	// ScanNsBase and ScanNsPerResidue define the single-thread cost per
	// translated subject residue: base hash-lookup cost plus per-query-
	// residue hit/extension cost. Fitted once so the 12-thread average over
	// the Fig. 6 query lengths is 24.8× slower than FabP (see test).
	ScanNsBase       float64
	ScanNsPerResidue float64
	// ScalingEff is parallel efficiency (8× at 12 threads on 6C/12T).
	ScalingEff float64
	// Frames is the number of translated frames scanned (TBLASTN: 6).
	Frames int
	// Watts1 and WattsAll are package+DRAM power at 1 and all threads.
	Watts1, WattsAll float64
}

// DefaultCPU returns the calibrated i7-8700K TBLASTN model for the given
// thread count (1 or 12 in the paper).
func DefaultCPU(threads int) CPU {
	return CPU{
		Name:             "i7-8700K TBLASTN",
		Threads:          threads,
		ScanNsBase:       1.35,
		ScanNsPerResidue: 0.027,
		ScalingEff:       8.0 / 12.0,
		Frames:           6,
		Watts1:           65,
		WattsAll:         125,
	}
}

// Time projects one query against a reference.
func (c CPU) Time(queryResidues, refNucleotides int) Result {
	// Each frame translates ~refNucleotides/3 residues; 6 frames ≈ 2
	// residues per nucleotide.
	subjectResidues := float64(c.Frames) * float64(refNucleotides) / 3
	nsPerResidue := c.ScanNsBase + c.ScanNsPerResidue*float64(queryResidues)
	seconds := subjectResidues * nsPerResidue * 1e-9
	watts := c.Watts1
	if c.Threads > 1 {
		eff := c.ScalingEff
		seconds /= float64(c.Threads) * eff
		frac := float64(c.Threads-1) / 11
		watts = c.Watts1 + (c.WattsAll-c.Watts1)*frac
	}
	return Result{
		Platform:      fmt.Sprintf("CPU/%s-%d", c.Name, c.Threads),
		QueryResidues: queryResidues,
		Seconds:       seconds,
		Watts:         watts,
	}
}

// Normalized expresses a platform relative to a baseline (the paper
// normalizes to single-thread TBLASTN).
type Normalized struct {
	// Speedup is baselineTime / time.
	Speedup float64
	// EnergyEfficiency is baselineEnergy / energy.
	EnergyEfficiency float64
}

// Normalize computes r relative to base.
func Normalize(base, r Result) Normalized {
	return Normalized{
		Speedup:          base.Seconds / r.Seconds,
		EnergyEfficiency: base.EnergyJoules() / r.EnergyJoules(),
	}
}
