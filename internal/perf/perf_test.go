package perf

import (
	"fabp/internal/axi"
	"math"
	"strings"
	"testing"

	"fabp/internal/fpga"
)

// paperRefNT is the evaluation database size: 1 GB of sequence ≈ 1e9
// nucleotides.
const paperRefNT = 1_000_000_000

// fig6Lengths are the query lengths of Fig. 6.
var fig6Lengths = []int{50, 100, 150, 200, 250}

func TestFPGAModelBasics(t *testing.T) {
	dev := fpga.Kintex7()
	r50, err := FPGA(dev, 50, paperRefNT)
	if err != nil {
		t.Fatal(err)
	}
	// FabP-50 is bandwidth-bound: 250 MB at ~12.2 GB/s ≈ 20.5 ms.
	if r50.Seconds < 0.015 || r50.Seconds > 0.03 {
		t.Errorf("FabP-50 time %.4fs outside expectation", r50.Seconds)
	}
	r250, err := FPGA(dev, 250, paperRefNT)
	if err != nil {
		t.Fatal(err)
	}
	if r250.Seconds <= r50.Seconds {
		t.Error("longer query must be slower")
	}
	if r50.Watts < 5 || r50.Watts > 20 {
		t.Errorf("FPGA power %.1fW implausible", r50.Watts)
	}
	if _, err := FPGA(dev, 100000, paperRefNT); err == nil {
		t.Error("oversized query must error")
	}
}

func TestFPGAWithStall(t *testing.T) {
	dev := fpga.Kintex7()
	ideal, err := FPGAWithStall(dev, 50, 1<<26, axi.NoStall{})
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := FPGAWithStall(dev, 50, 1<<26, axi.NewRandomStall(0.3, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if noisy.Seconds <= ideal.Seconds {
		t.Error("stalls must slow the scan")
	}
	if _, err := FPGAWithStall(dev, 100000, 1<<26, axi.NoStall{}); err == nil {
		t.Error("non-fitting query must fail")
	}
}

func TestGPUModelMonotone(t *testing.T) {
	g := DefaultGPU()
	prev := 0.0
	for _, l := range fig6Lengths {
		r := g.Time(l, paperRefNT)
		if r.Seconds <= prev {
			t.Errorf("GPU time must grow with query length at %d", l)
		}
		prev = r.Seconds
		if r.Watts != 250 {
			t.Error("1080Ti draw should be 250W")
		}
	}
}

func TestCPUModelThreadScaling(t *testing.T) {
	one := DefaultCPU(1).Time(150, paperRefNT)
	twelve := DefaultCPU(12).Time(150, paperRefNT)
	ratio := one.Seconds / twelve.Seconds
	if math.Abs(ratio-8.0) > 0.01 {
		t.Errorf("12-thread scaling %.2f, want 8.0", ratio)
	}
	if twelve.Watts <= one.Watts {
		t.Error("more threads must draw more power")
	}
}

// TestFig6HeadlineAverages checks the paper's headline numbers: FabP is on
// average 8.1 % faster than the GPU, 24.8× faster than 12-thread TBLASTN,
// with 23.2× and 266.8× energy-efficiency gains respectively.
func TestFig6HeadlineAverages(t *testing.T) {
	dev := fpga.Kintex7()
	gpu := DefaultGPU()
	cpu12 := DefaultCPU(12)

	var sumGPUSpeed, sumCPUSpeed, sumGPUEnergy, sumCPUEnergy float64
	for _, l := range fig6Lengths {
		f, err := FPGA(dev, l, paperRefNT)
		if err != nil {
			t.Fatal(err)
		}
		g := gpu.Time(l, paperRefNT)
		c := cpu12.Time(l, paperRefNT)
		sumGPUSpeed += g.Seconds / f.Seconds
		sumCPUSpeed += c.Seconds / f.Seconds
		sumGPUEnergy += g.EnergyJoules() / f.EnergyJoules()
		sumCPUEnergy += c.EnergyJoules() / f.EnergyJoules()
	}
	n := float64(len(fig6Lengths))
	gpuSpeed := sumGPUSpeed / n
	cpuSpeed := sumCPUSpeed / n
	gpuEnergy := sumGPUEnergy / n
	cpuEnergy := sumCPUEnergy / n
	t.Logf("avg FabP vs GPU: %.3fx speed, %.1fx energy (paper: 1.081x, 23.2x)", gpuSpeed, gpuEnergy)
	t.Logf("avg FabP vs CPU-12: %.1fx speed, %.1fx energy (paper: 24.8x, 266.8x)", cpuSpeed, cpuEnergy)

	check := func(name string, got, want, relTol float64) {
		t.Helper()
		if math.Abs(got-want)/want > relTol {
			t.Errorf("%s = %.2f, paper %.2f (tol %.0f%%)", name, got, want, 100*relTol)
		}
	}
	check("GPU speedup", gpuSpeed, 1.081, 0.15)
	check("CPU-12 speedup", cpuSpeed, 24.8, 0.25)
	check("GPU energy ratio", gpuEnergy, 23.2, 0.35)
	check("CPU-12 energy ratio", cpuEnergy, 266.8, 0.35)
}

// TestAllPlatformsGrowWithQueryLength reproduces the Fig. 6 qualitative
// statement: "for all platforms, increasing the number of query elements
// increases the execution time and energy consumption."
func TestAllPlatformsGrowWithQueryLength(t *testing.T) {
	dev := fpga.Kintex7()
	gpu := DefaultGPU()
	cpu1 := DefaultCPU(1)
	var prevF, prevG, prevC float64
	for _, l := range fig6Lengths {
		f, err := FPGA(dev, l, paperRefNT)
		if err != nil {
			t.Fatal(err)
		}
		g := gpu.Time(l, paperRefNT)
		c := cpu1.Time(l, paperRefNT)
		if f.Seconds < prevF || g.Seconds < prevG || c.Seconds < prevC {
			t.Errorf("time decreased at length %d", l)
		}
		prevF, prevG, prevC = f.Seconds, g.Seconds, c.Seconds
	}
}

func TestNormalize(t *testing.T) {
	base := Result{Seconds: 10, Watts: 100}
	x := Result{Seconds: 1, Watts: 10}
	n := Normalize(base, x)
	if n.Speedup != 10 || n.EnergyEfficiency != 100 {
		t.Errorf("normalized %+v", n)
	}
}

func TestResultString(t *testing.T) {
	r := Result{Platform: "GPU/x", QueryResidues: 50, Seconds: 0.5, Watts: 100}
	s := r.String()
	if !strings.Contains(s, "GPU/x") || !strings.Contains(s, "50.00J") {
		t.Errorf("String = %q", s)
	}
	if r.EnergyJoules() != 50 {
		t.Error("energy wrong")
	}
}
