package tblastn

import (
	"math/rand"
	"testing"

	"fabp/internal/bio"
)

func TestHSPStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	q, ref := plantQuery(rng, 20000, 50, 9000)
	hsps, _, err := Search(q, ref, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hsps) == 0 {
		t.Fatal("no HSPs")
	}
	top := hsps[0]
	if top.BitScore <= 0 {
		t.Errorf("top bit score %.1f", top.BitScore)
	}
	// A planted 50-residue exact gene is overwhelmingly significant.
	if top.EValue > 1e-10 {
		t.Errorf("top E-value %g too large for a planted gene", top.EValue)
	}
	// Bit scores must order like raw scores.
	for i := 1; i < len(hsps); i++ {
		if hsps[i-1].Score >= hsps[i].Score && hsps[i-1].BitScore < hsps[i].BitScore {
			t.Fatal("bit score ordering inconsistent")
		}
	}
}

func TestEValueFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	q, ref := plantQuery(rng, 20000, 50, 4000)
	loose, _, err := Search(q, ref, Options{MinScore: 30})
	if err != nil {
		t.Fatal(err)
	}
	strict, _, err := Search(q, ref, Options{MinScore: 30, MaxEValue: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if len(strict) > len(loose) {
		t.Error("E-value filter added HSPs?")
	}
	for _, h := range strict {
		if h.EValue > 1e-12 {
			t.Errorf("HSP with E=%g survived the filter", h.EValue)
		}
	}
	// The planted gene must survive a strict filter.
	if len(strict) == 0 {
		t.Error("planted gene filtered out")
	}
}

func TestCullContained(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	q, ref := plantQuery(rng, 15000, 50, 6000)
	culled, _, err := Search(q, ref, Options{})
	if err != nil {
		t.Fatal(err)
	}
	kept, _, err := Search(q, ref, Options{KeepContained: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(culled) > len(kept) {
		t.Error("culling added HSPs?")
	}
	// No surviving HSP may be contained in a better same-frame one.
	for i, h := range culled {
		for _, k := range culled[:i] {
			if k.Frame == h.Frame && k.Score >= h.Score &&
				k.QStart <= h.QStart && h.QEnd <= k.QEnd &&
				k.SStart <= h.SStart && h.SEnd <= k.SEnd &&
				k != h {
				t.Fatalf("contained HSP survived: %+v inside %+v", h, k)
			}
		}
	}
}

func TestGappedRefinement(t *testing.T) {
	// Plant a gene whose protein has a deletion relative to the query: the
	// ungapped HSP covers one side; gapped refinement must bridge it.
	rng := rand.New(rand.NewSource(22))
	orig := bio.RandomProtSeq(rng, 60)
	deleted := append(append(bio.ProtSeq{}, orig[:30]...), orig[33:]...) // drop 3 residues
	ref := bio.RandomNucSeq(rng, 10000)
	copy(ref[3000:], bio.EncodeGene(rng, deleted))

	hsps, _, err := Search(orig, ref, Options{GappedRefine: true, MinScore: 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(hsps) == 0 {
		t.Fatal("no HSPs")
	}
	found := false
	for _, h := range hsps {
		if h.GappedScore > h.Score {
			found = true
		}
		if h.GappedScore == 0 {
			t.Errorf("refinement left GappedScore empty: %+v", h)
		}
	}
	if !found {
		t.Error("gapped refinement should beat the ungapped score across the indel")
	}
}
