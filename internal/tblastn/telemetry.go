package tblastn

import (
	"time"

	"fabp/internal/telemetry"
)

// searchMetrics are the package's process-wide instruments, registered
// under tblastn.* on the default telemetry registry so /metrics and the
// bench harness see protein-search traffic next to the nucleotide path.
type searchMetrics struct {
	// searches counts pipeline runs; canceled the ones that exited on a
	// context error.
	searches *telemetry.Counter
	canceled *telemetry.Counter
	// wordLookups/wordHits/extensions/hsps mirror Stats, accumulated
	// across searches. extensions counts the canonical (thread-invariant)
	// extension work; speculative counts extensions shards precomputed,
	// whether or not the merge used them.
	wordLookups *telemetry.Counter
	wordHits    *telemetry.Counter
	extensions  *telemetry.Counter
	speculative *telemetry.Counter
	hsps        *telemetry.Counter
	// indexBuild/scanLatency time BuildIndex and the scan phase.
	indexBuild  *telemetry.Histogram
	scanLatency *telemetry.Histogram
}

func newSearchMetrics(reg *telemetry.Registry) searchMetrics {
	return searchMetrics{
		searches:    reg.Counter("tblastn.searches"),
		canceled:    reg.Counter("tblastn.canceled"),
		wordLookups: reg.Counter("tblastn.word.lookups"),
		wordHits:    reg.Counter("tblastn.word.hits"),
		extensions:  reg.Counter("tblastn.extensions"),
		speculative: reg.Counter("tblastn.extensions.speculative"),
		hsps:        reg.Counter("tblastn.hsps"),
		indexBuild:  reg.Histogram("tblastn.index.build.latency"),
		scanLatency: reg.Histogram("tblastn.scan.latency"),
	}
}

var tm = newSearchMetrics(telemetry.Default())

// observeIndexBuild records one BuildIndex duration.
func observeIndexBuild(d time.Duration) { tm.indexBuild.Observe(d) }
