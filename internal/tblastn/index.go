package tblastn

import (
	"fmt"
	"time"

	"fabp/internal/bio"
)

// WordSize is the protein k-mer length (BLAST protein default).
const WordSize = 3

// numWords is the size of the word space (20^3; Stop never indexes).
const numWords = 20 * 20 * 20

// wordID packs a 3-mer of coding residues into a dense integer, or returns
// -1 when the window contains a Stop.
func wordID(a, b, c bio.AminoAcid) int {
	if a >= bio.NumAminoAcids || b >= bio.NumAminoAcids || c >= bio.NumAminoAcids {
		return -1
	}
	return int(a)*400 + int(b)*20 + int(c)
}

// wordResidues unpacks a dense word id.
func wordResidues(w int) (a, b, c bio.AminoAcid) {
	return bio.AminoAcid(w / 400), bio.AminoAcid(w / 20 % 20), bio.AminoAcid(w % 20)
}

// wordScore is the BLOSUM62 score of aligning two words position-wise.
func wordScore(w, v int) int {
	wa, wb, wc := wordResidues(w)
	va, vb, vc := wordResidues(v)
	return bio.Blosum62(wa, va) + bio.Blosum62(wb, vb) + bio.Blosum62(wc, vc)
}

// Index is the query-side neighborhood hash table: for every database word
// it lists the query positions whose word neighborhood contains it. This is
// the structure whose random-access lookups bound BLAST's throughput
// (§II: "the performance of the hash-table lookup step ... is limited by
// the numerous random memory accesses").
type Index struct {
	// Query is the indexed protein.
	Query bio.ProtSeq
	// NeighborThreshold is the minimum word pair score for membership.
	NeighborThreshold int
	// buckets[word] lists query word-start positions.
	buckets [][]int32
	// entries counts the total postings.
	entries int
}

// BuildIndex enumerates, for each query word, every 3-mer whose pairwise
// BLOSUM62 score reaches threshold t, and posts the query position under
// that neighbor. BLAST's default T for word size 3 is 11.
func BuildIndex(q bio.ProtSeq, t int) (*Index, error) {
	if len(q) < WordSize {
		return nil, fmt.Errorf("tblastn: query length %d below word size %d", len(q), WordSize)
	}
	defer func(start time.Time) { observeIndexBuild(time.Since(start)) }(time.Now())
	idx := &Index{Query: q, NeighborThreshold: t, buckets: make([][]int32, numWords)}
	// Enumerate neighbors per position, pruning by per-position best
	// remaining score so most of the 8000-word space is skipped.
	for i := 0; i+WordSize <= len(q); i++ {
		if wordID(q[i], q[i+1], q[i+2]) < 0 {
			continue // query word spans a Stop
		}
		rowA := bio.Blosum62Row(q[i])
		rowB := bio.Blosum62Row(q[i+1])
		rowC := bio.Blosum62Row(q[i+2])
		maxB, maxC := maxRow(rowB), maxRow(rowC)
		for a := bio.AminoAcid(0); a < bio.NumAminoAcids; a++ {
			sa := int(rowA[a])
			if sa+maxB+maxC < t {
				continue
			}
			for b := bio.AminoAcid(0); b < bio.NumAminoAcids; b++ {
				sab := sa + int(rowB[b])
				if sab+maxC < t {
					continue
				}
				for c := bio.AminoAcid(0); c < bio.NumAminoAcids; c++ {
					if sab+int(rowC[c]) < t {
						continue
					}
					v := int(a)*400 + int(b)*20 + int(c)
					idx.buckets[v] = append(idx.buckets[v], int32(i))
					idx.entries++
				}
			}
		}
	}
	if idx.entries == 0 {
		return nil, fmt.Errorf("tblastn: neighborhood threshold %d leaves no index entries", t)
	}
	return idx, nil
}

func maxRow(r [bio.NumResidues]int8) int {
	best := int(r[0])
	for _, v := range r[1:bio.NumAminoAcids] {
		if int(v) > best {
			best = int(v)
		}
	}
	return best
}

// Lookup returns the query positions seeded by the database word starting
// at s[j] (nil when the window holds a Stop or has no neighbors). The
// returned slice is shared — do not modify.
func (idx *Index) Lookup(a, b, c bio.AminoAcid) []int32 {
	w := wordID(a, b, c)
	if w < 0 {
		return nil
	}
	return idx.buckets[w]
}

// Entries returns the total posting count (a measure of index density).
func (idx *Index) Entries() int { return idx.entries }
