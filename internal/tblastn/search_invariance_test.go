package tblastn

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"fabp/internal/bio"
)

// TestTwoHitThreadInvariance pins the shard-boundary bugfix: with TwoHit
// on, seed pairs straddling chunk boundaries used to be dropped at
// Threads>1. The sharded scan must now reproduce the serial HSP set and
// Stats exactly, across many layouts.
func TestTwoHitThreadInvariance(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		q := bio.RandomProtSeq(rng, 50+rng.Intn(40))
		ref := bio.RandomNucSeq(rng, 40000+rng.Intn(30000))
		// A few planted copies so the scan has real seeds near arbitrary
		// shard boundaries.
		for c := 0; c < 4; c++ {
			pos := rng.Intn(len(ref) - 3*len(q) - 3)
			copy(ref[pos:], bio.EncodeGene(rng, q))
		}
		for _, twoHit := range []bool{true, false} {
			base := Options{TwoHit: twoHit, MinScore: 40}
			h1, st1, err := Search(q, ref, base)
			if err != nil {
				t.Fatal(err)
			}
			for _, threads := range []int{2, 4, 8} {
				o := base
				o.Threads = threads
				hN, stN, err := Search(q, ref, o)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(h1, hN) {
					t.Fatalf("seed %d twoHit=%v: Threads=%d changed HSPs: %d vs %d",
						seed, twoHit, threads, len(h1), len(hN))
				}
				if st1 != stN {
					t.Fatalf("seed %d twoHit=%v: Threads=%d changed stats: %+v vs %+v",
						seed, twoHit, threads, st1, stN)
				}
			}
		}
	}
}

// TestSearchDeterminism runs the same search 50 times and demands
// byte-identical output — the old sort tie-broke only on (Score, Frame,
// SStart), letting map-iteration order leak into results.
func TestSearchDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	q := bio.RandomProtSeq(rng, 45)
	ref := bio.RandomNucSeq(rng, 30000)
	for c := 0; c < 3; c++ {
		copy(ref[3000+c*9000:], bio.EncodeGene(rng, q))
	}
	opts := Options{Threads: 4, TwoHit: true, MinScore: 40}
	var first string
	for run := 0; run < 50; run++ {
		hsps, _, err := Search(q, ref, opts)
		if err != nil {
			t.Fatal(err)
		}
		got := fmt.Sprintf("%+v", hsps)
		if run == 0 {
			first = got
		} else if got != first {
			t.Fatalf("run %d output differs from run 0", run)
		}
	}
}

// TestLessHSPTotalOrder checks the comparator is a strict weak ordering
// that separates HSPs tying on (Score, Frame, SStart).
func TestLessHSPTotalOrder(t *testing.T) {
	hsps := []HSP{
		{Score: 50, Frame: 1, SStart: 10, QStart: 3, QEnd: 20, SEnd: 27},
		{Score: 50, Frame: 1, SStart: 10, QStart: 3, QEnd: 18, SEnd: 25},
		{Score: 50, Frame: 1, SStart: 10, QStart: 1, QEnd: 20, SEnd: 27},
		{Score: 50, Frame: 0, SStart: 10, QStart: 3, QEnd: 20, SEnd: 27},
		{Score: 60, Frame: 1, SStart: 10, QStart: 3, QEnd: 20, SEnd: 27},
		{Score: 50, Frame: 1, SStart: 10, QStart: 3, QEnd: 20, SEnd: 30},
	}
	for i := range hsps {
		for j := range hsps {
			li, lj := lessHSP(&hsps[i], &hsps[j]), lessHSP(&hsps[j], &hsps[i])
			if i == j {
				if li {
					t.Fatalf("lessHSP(%d,%d) not irreflexive", i, j)
				}
				continue
			}
			if li == lj {
				t.Fatalf("HSPs %d and %d not totally ordered: less=%v both ways", i, j, li)
			}
		}
	}
	// Sorting two different permutations must converge.
	a := append([]HSP(nil), hsps...)
	b := []HSP{hsps[5], hsps[3], hsps[1], hsps[4], hsps[0], hsps[2]}
	sort.Slice(a, func(i, j int) bool { return lessHSP(&a[i], &a[j]) })
	sort.Slice(b, func(i, j int) bool { return lessHSP(&b[i], &b[j]) })
	if !reflect.DeepEqual(a, b) {
		t.Fatal("sort order depends on input permutation")
	}
}

// TestOptionSentinels covers the unset-vs-explicit-zero fix: zero keeps
// the BLAST default, the *All sentinels select maximal sensitivity, and
// anything below them is rejected.
func TestOptionSentinels(t *testing.T) {
	r, err := Options{}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if r.MinScore != 35 || r.NeighborThreshold != 11 {
		t.Fatalf("zero options resolved to MinScore=%d T=%d, want 35/11", r.MinScore, r.NeighborThreshold)
	}
	r2, err := Options{MinScore: MinScoreAll, NeighborThreshold: NeighborThresholdAll}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if r2.MinScore != MinScoreAll || r2.NeighborThreshold != NeighborThresholdAll {
		t.Fatalf("sentinels rewritten: MinScore=%d T=%d", r2.MinScore, r2.NeighborThreshold)
	}
	// Resolve must be idempotent so resolved options can be passed back in.
	r3, err := r2.Resolve()
	if err != nil || r3 != r2 {
		t.Fatalf("Resolve not idempotent: %+v vs %+v (err %v)", r3, r2, err)
	}

	rng := rand.New(rand.NewSource(11))
	q := bio.RandomProtSeq(rng, 40)
	ref := bio.RandomNucSeq(rng, 10000)
	copy(ref[4002:], bio.EncodeGene(rng, q))

	def, _, err := Search(q, ref, Options{})
	if err != nil {
		t.Fatal(err)
	}
	all, _, err := Search(q, ref, Options{MinScore: MinScoreAll})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < len(def) {
		t.Fatalf("MinScoreAll returned fewer HSPs (%d) than default (%d)", len(all), len(def))
	}
	idxDef, err := BuildIndex(q, 11)
	if err != nil {
		t.Fatal(err)
	}
	idxAll, err := BuildIndex(q, NeighborThresholdAll)
	if err != nil {
		t.Fatal(err)
	}
	if idxAll.Entries() <= idxDef.Entries() {
		t.Fatalf("NeighborThresholdAll index (%d entries) not denser than default (%d)",
			idxAll.Entries(), idxDef.Entries())
	}
}

func TestResolveRejectsInvalid(t *testing.T) {
	bad := []Options{
		{MinScore: -2},
		{NeighborThreshold: -5},
		{Threads: -1},
		{HitWindow: -3},
		{XDrop: -1},
		{Frames: 7},
		{RefineMargin: -1},
		{MaxEValue: -0.5},
	}
	for _, o := range bad {
		if _, err := o.Resolve(); err == nil {
			t.Errorf("Resolve(%+v) accepted invalid options", o)
		}
		if _, _, err := Search(bio.RandomProtSeq(rand.New(rand.NewSource(1)), 20),
			bio.RandomNucSeq(rand.New(rand.NewSource(2)), 600), o); err == nil {
			t.Errorf("Search(%+v) accepted invalid options", o)
		}
	}
}

// TestSearchContextCancel checks both scan paths honour cancellation:
// a pre-canceled context returns immediately, and a mid-scan cancel
// unwinds with ctx.Err().
func TestSearchContextCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	q := bio.RandomProtSeq(rng, 60)
	ref := bio.RandomNucSeq(rng, 200000)

	for _, threads := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, _, err := SearchContext(ctx, q, ref, Options{Threads: threads}); err != context.Canceled {
			t.Fatalf("Threads=%d pre-canceled: err=%v, want context.Canceled", threads, err)
		}

		ctx, cancel = context.WithTimeout(context.Background(), 2*time.Millisecond)
		_, _, err := SearchContext(ctx, q, ref, Options{Threads: threads, NeighborThreshold: NeighborThresholdAll, MinScore: MinScoreAll})
		cancel()
		if err != nil && err != context.DeadlineExceeded {
			t.Fatalf("Threads=%d mid-scan: unexpected err %v", threads, err)
		}
	}
}
