package tblastn

import (
	"math/rand"
	"reflect"
	"testing"

	"fabp/internal/bio"
)

func TestFrameBasics(t *testing.T) {
	if Frame(0).IsReverse() || !Frame(3).IsReverse() {
		t.Error("IsReverse wrong")
	}
	if Frame(4).Offset() != 1 || Frame(2).Offset() != 2 {
		t.Error("Offset wrong")
	}
	if Frame(0).String() != "+1" || Frame(5).String() != "-3" {
		t.Error("String wrong")
	}
}

func TestTranslate6Geometry(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ref := bio.RandomNucSeq(rng, 100)
	frames := Translate6(ref)
	if len(frames) != 6 {
		t.Fatal("expected 6 frames")
	}
	for _, tf := range frames {
		for i := range tf.Prot {
			pos := tf.NucStart(i)
			if pos < 0 || pos+3 > len(ref) {
				t.Fatalf("frame %v pos %d: nuc start %d out of range", tf.Frame, i, pos)
			}
			// Re-derive the residue from the original reference.
			var codon bio.Codon
			if tf.Frame.IsReverse() {
				codon = bio.Codon{
					ref[pos+2].Complement(),
					ref[pos+1].Complement(),
					ref[pos].Complement(),
				}
			} else {
				codon = bio.Codon{ref[pos], ref[pos+1], ref[pos+2]}
			}
			if codon.Translate() != tf.Prot[i] {
				t.Fatalf("frame %v pos %d: geometry mismatch", tf.Frame, i)
			}
		}
	}
}

func TestTranslate3IsForwardPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ref := bio.RandomNucSeq(rng, 60)
	f3 := Translate3(ref)
	f6 := Translate6(ref)
	for i := 0; i < 3; i++ {
		if !reflect.DeepEqual(f3[i].Prot, f6[i].Prot) {
			t.Errorf("frame %d differs", i)
		}
	}
}

func TestWordIDRoundTrip(t *testing.T) {
	for w := 0; w < numWords; w += 7 {
		a, b, c := wordResidues(w)
		if wordID(a, b, c) != w {
			t.Fatalf("round trip failed at %d", w)
		}
	}
	if wordID(bio.Stop, bio.Ala, bio.Ala) != -1 {
		t.Error("Stop words must be rejected")
	}
}

func TestWordScore(t *testing.T) {
	w := wordID(bio.Trp, bio.Trp, bio.Trp)
	if got := wordScore(w, w); got != 33 {
		t.Errorf("WWW self score %d, want 33", got)
	}
}

func TestBuildIndexSelfWords(t *testing.T) {
	q, _ := bio.ParseProtSeq("MKWVTFISLLFLFSSAYSRGVFRR")
	idx, err := BuildIndex(q, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Every query word scoring >= T against itself must be in its own
	// bucket.
	for i := 0; i+WordSize <= len(q); i++ {
		w := wordID(q[i], q[i+1], q[i+2])
		if w < 0 || wordScore(w, w) < 11 {
			continue
		}
		found := false
		for _, p := range idx.Lookup(q[i], q[i+1], q[i+2]) {
			if int(p) == i {
				found = true
			}
		}
		if !found {
			t.Errorf("position %d missing from its own word bucket", i)
		}
	}
	if idx.Entries() == 0 {
		t.Error("index must have entries")
	}
}

func TestBuildIndexThresholdMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q := bio.RandomProtSeq(rng, 60)
	lo, err := BuildIndex(q, 9)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := BuildIndex(q, 13)
	if err != nil {
		t.Fatal(err)
	}
	if hi.Entries() >= lo.Entries() {
		t.Errorf("higher T must shrink the index: %d vs %d", hi.Entries(), lo.Entries())
	}
}

func TestBuildIndexErrors(t *testing.T) {
	if _, err := BuildIndex(bio.ProtSeq{bio.Met}, 11); err == nil {
		t.Error("short query must fail")
	}
	q, _ := bio.ParseProtSeq("MKWVTF")
	if _, err := BuildIndex(q, 10000); err == nil {
		t.Error("absurd threshold must fail")
	}
}

func TestNeighborhoodCorrectness(t *testing.T) {
	// Brute-force check one word's neighborhood.
	q, _ := bio.ParseProtSeq("WKH")
	idx, err := BuildIndex(q, 11)
	if err != nil {
		t.Fatal(err)
	}
	w := wordID(bio.Trp, bio.Lys, bio.His)
	for v := 0; v < numWords; v++ {
		a, b, c := wordResidues(v)
		want := wordScore(w, v) >= 11
		got := false
		for _, p := range idx.Lookup(a, b, c) {
			if p == 0 {
				got = true
			}
		}
		if got != want {
			t.Fatalf("word %d: in-neighborhood=%v, want %v", v, got, want)
		}
	}
}

// plantQuery embeds a protein's gene in random DNA and returns both.
func plantQuery(rng *rand.Rand, refLen, qLen, pos int) (bio.ProtSeq, bio.NucSeq) {
	q := bio.RandomProtSeq(rng, qLen)
	ref := bio.RandomNucSeq(rng, refLen)
	copy(ref[pos:], bio.EncodeGene(rng, q))
	return q, ref
}

func TestSearchFindsPlantedGene(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	q, ref := plantQuery(rng, 6000, 40, 1503)
	hsps, stats, err := Search(q, ref, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(hsps) == 0 {
		t.Fatal("no HSPs found")
	}
	top := hsps[0]
	if top.Frame != Frame(0) {
		t.Errorf("top HSP frame %v, want +1", top.Frame)
	}
	// The top HSP must overlap the planted locus.
	if top.NucPos < 1503-30 || top.NucPos > 1503+3*40 {
		t.Errorf("top HSP at nuc %d, planted at 1503", top.NucPos)
	}
	if stats.WordLookups == 0 || stats.Extensions == 0 {
		t.Errorf("stats look empty: %+v", stats)
	}
}

func TestSearchFindsReverseStrandGene(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q := bio.RandomProtSeq(rng, 40)
	gene := bio.EncodeGene(rng, q)
	ref := bio.RandomNucSeq(rng, 5000)
	pos := 2001
	rc := gene.ReverseComplement()
	copy(ref[pos:], rc)
	hsps, _, err := Search(q, ref, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(hsps) == 0 {
		t.Fatal("no HSPs")
	}
	if !hsps[0].Frame.IsReverse() {
		t.Errorf("top HSP frame %v, want reverse", hsps[0].Frame)
	}
	if hsps[0].NucPos < pos-3 || hsps[0].NucPos > pos+len(rc) {
		t.Errorf("top HSP at %d, planted at %d..%d", hsps[0].NucPos, pos, pos+len(rc))
	}
}

func TestSearchForwardOnlyMissesReverse(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	q := bio.RandomProtSeq(rng, 40)
	ref := bio.RandomNucSeq(rng, 4000)
	copy(ref[1000:], bio.EncodeGene(rng, q).ReverseComplement())
	fwd, _, err := Search(q, ref, Options{Frames: 3, MinScore: 60})
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := Search(q, ref, Options{Frames: 6, MinScore: 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(fwd) >= len(full) {
		t.Errorf("forward-only should find fewer HSPs: %d vs %d", len(fwd), len(full))
	}
}

func TestSearchThreadInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q, ref := plantQuery(rng, 20000, 50, 9000)
	h1, _, err := Search(q, ref, Options{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	h12, _, err := Search(q, ref, Options{Threads: 12})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h1, h12) {
		t.Errorf("thread count changed results: %d vs %d HSPs", len(h1), len(h12))
	}
}

func TestTwoHitReducesExtensions(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	q, ref := plantQuery(rng, 30000, 60, 12000)
	_, one, err := Search(q, ref, Options{TwoHit: false})
	if err != nil {
		t.Fatal(err)
	}
	two, twoStats, err := Search(q, ref, Options{TwoHit: true})
	if err != nil {
		t.Fatal(err)
	}
	if twoStats.Extensions >= one.Extensions {
		t.Errorf("two-hit should cut extensions: %d vs %d", twoStats.Extensions, one.Extensions)
	}
	// The planted gene must still be found.
	found := false
	for _, h := range two {
		if h.Frame == 0 && h.NucPos >= 12000-60 && h.NucPos <= 12000+180 {
			found = true
		}
	}
	if !found {
		t.Error("two-hit search lost the planted gene")
	}
}

func TestSearchMutatedQueryStillFound(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	orig := bio.RandomProtSeq(rng, 80)
	ref := bio.RandomNucSeq(rng, 30000)
	copy(ref[21000:], bio.EncodeGene(rng, orig))
	model := bio.DefaultMutationModel()
	query, _ := model.Mutate(rng, orig)
	hsps, _, err := Search(query, ref, Options{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, h := range hsps {
		if h.Frame == 0 && h.NucPos >= 21000-90 && h.NucPos < 21000+240 {
			found = true
		}
	}
	if !found {
		t.Error("diverged query not recovered")
	}
}

func TestSearchOptionsValidation(t *testing.T) {
	q, _ := bio.ParseProtSeq("MKWVTFISLL")
	if _, _, err := Search(q, make(bio.NucSeq, 100), Options{Frames: 7}); err == nil {
		t.Error("frames > 6 must fail")
	}
	// Tiny reference: no frames scannable, no error.
	hsps, _, err := Search(q, bio.NucSeq{bio.A, bio.C}, Options{})
	if err != nil || hsps != nil {
		t.Errorf("tiny reference: %v %v", hsps, err)
	}
}

func TestHSPScoresArePlausible(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	q, ref := plantQuery(rng, 10000, 45, 4002)
	hsps, _, err := Search(q, ref, Options{})
	if err != nil {
		t.Fatal(err)
	}
	selfScore := 0
	for _, a := range q {
		selfScore += bio.Blosum62(a, a)
	}
	if hsps[0].Score > selfScore {
		t.Errorf("HSP score %d exceeds query self-score %d", hsps[0].Score, selfScore)
	}
	if hsps[0].Score < selfScore/2 {
		t.Errorf("planted gene HSP score %d suspiciously low (self %d)", hsps[0].Score, selfScore)
	}
	for _, h := range hsps {
		if h.QStart < 0 || h.QEnd > len(q) || h.QStart >= h.QEnd {
			t.Errorf("bad query range %+v", h)
		}
		if h.SEnd-h.SStart != h.QEnd-h.QStart {
			t.Errorf("ungapped HSP ranges must have equal length: %+v", h)
		}
	}
}
