// Package tblastn implements a from-scratch TBLASTN-style heuristic search:
// a protein query against a nucleotide database, via 6-frame translation,
// a BLOSUM62 k-mer neighborhood index, two-hit diagonal seeding and
// ungapped X-drop extension — the CPU baseline of the paper's Fig. 6. Its
// pipeline reproduces the random-memory-access hash-lookup behaviour the
// paper contrasts with FabP's sequential streaming (§II).
package tblastn

import (
	"fmt"

	"fabp/internal/bio"
)

// Frame identifies one of the six reading frames: 0,1,2 are the forward
// offsets; 3,4,5 are offsets 0,1,2 on the reverse complement.
type Frame int

// NumFrames is the count of reading frames in a full translated search.
const NumFrames = 6

// IsReverse reports whether the frame reads the reverse-complement strand.
func (f Frame) IsReverse() bool { return f >= 3 }

// Offset returns the nucleotide offset of the frame within its strand.
func (f Frame) Offset() int { return int(f) % 3 }

// String renders frames BLAST-style: +1..+3, -1..-3.
func (f Frame) String() string {
	if f.IsReverse() {
		return fmt.Sprintf("-%d", f.Offset()+1)
	}
	return fmt.Sprintf("+%d", f.Offset()+1)
}

// TranslatedFrame is one reading frame of the reference with enough
// geometry to map protein coordinates back to the original nucleotides.
type TranslatedFrame struct {
	Frame Frame
	// Prot is the frame's translation (may contain Stop residues).
	Prot bio.ProtSeq
	// refLen is the original reference length in nucleotides.
	refLen int
}

// NucStart returns the forward-strand nucleotide offset of the lowest-
// address base of the codon encoding protein position i (for reverse
// frames the codon is read right-to-left from there).
func (tf *TranslatedFrame) NucStart(i int) int {
	off := tf.Frame.Offset()
	if !tf.Frame.IsReverse() {
		return off + 3*i
	}
	// Position in the reverse-complement string is off+3i..off+3i+2, which
	// maps to forward positions refLen-1-(off+3i+2) .. refLen-1-(off+3i).
	return tf.refLen - 1 - (off + 3*i + 2)
}

// Translate6 produces all six reading frames of the reference.
func Translate6(ref bio.NucSeq) []TranslatedFrame {
	rc := ref.ReverseComplement()
	frames := make([]TranslatedFrame, 0, NumFrames)
	for f := Frame(0); f < NumFrames; f++ {
		src := ref
		if f.IsReverse() {
			src = rc
		}
		frames = append(frames, TranslatedFrame{
			Frame:  f,
			Prot:   src.Translate(f.Offset()),
			refLen: len(ref),
		})
	}
	return frames
}

// Translate3 produces only the forward frames — the configuration matching
// FabP, which searches the given strand.
func Translate3(ref bio.NucSeq) []TranslatedFrame {
	frames := make([]TranslatedFrame, 0, 3)
	for f := Frame(0); f < 3; f++ {
		frames = append(frames, TranslatedFrame{
			Frame:  f,
			Prot:   ref.Translate(f.Offset()),
			refLen: len(ref),
		})
	}
	return frames
}
