package tblastn

import (
	"fmt"
	"sort"
	"sync"

	"fabp/internal/bio"
	kastats "fabp/internal/stats"
	"fabp/internal/swalign"
)

// Options tune the search pipeline; zero values take BLAST-like defaults
// via Defaults.
type Options struct {
	// NeighborThreshold is the word-pair score to enter the index (T).
	NeighborThreshold int
	// TwoHit requires two non-overlapping same-diagonal word hits within
	// HitWindow residues before extending (BLAST's default strategy).
	TwoHit bool
	// HitWindow is the two-hit distance window (A).
	HitWindow int
	// XDrop stops ungapped extension when the running score falls this far
	// below the best seen.
	XDrop int
	// MinScore discards HSPs scoring lower (raw BLOSUM score cutoff).
	MinScore int
	// Threads is the worker count (the paper measures 1 and 12).
	Threads int
	// Frames limits the search to the first N frames (3 = forward only,
	// matching FabP's single-strand scan; 6 = full TBLASTN).
	Frames int
	// MaxEValue, when positive, discards HSPs whose Karlin-Altschul
	// E-value exceeds it (applied after MinScore).
	MaxEValue float64
	// GappedRefine re-aligns each surviving HSP's neighbourhood with
	// Smith-Waterman (BLOSUM62, affine 11/1), filling GappedScore.
	GappedRefine bool
	// KeepContained disables the default culling of HSPs whose query and
	// subject ranges are contained in a higher-scoring same-frame HSP
	// (BLAST's dominance filter).
	KeepContained bool
	// RefineMargin is the residue margin around the HSP used for gapped
	// refinement (default 20).
	RefineMargin int
}

// Defaults fills unset fields with BLAST-flavoured values.
func (o Options) Defaults() Options {
	if o.NeighborThreshold == 0 {
		o.NeighborThreshold = 11
	}
	if o.HitWindow == 0 {
		o.HitWindow = 40
	}
	if o.XDrop == 0 {
		o.XDrop = 16
	}
	if o.MinScore == 0 {
		o.MinScore = 35
	}
	if o.Threads == 0 {
		o.Threads = 1
	}
	if o.Frames == 0 {
		o.Frames = NumFrames
	}
	if o.RefineMargin == 0 {
		o.RefineMargin = 20
	}
	return o
}

// HSP is a high-scoring segment pair: an ungapped local alignment between
// the query and one translated frame.
type HSP struct {
	Frame Frame
	// QStart/QEnd delimit the query residues (half-open).
	QStart, QEnd int
	// SStart/SEnd delimit the frame's protein positions (half-open).
	SStart, SEnd int
	// Score is the raw BLOSUM62 segment score.
	Score int
	// NucPos is the forward-strand nucleotide offset of the subject
	// segment's lowest-address codon base.
	NucPos int
	// BitScore and EValue are Karlin-Altschul statistics over the search
	// space (ungapped BLOSUM62 parameters).
	BitScore float64
	EValue   float64
	// GappedScore is the Smith-Waterman score of the refined alignment
	// window (0 unless Options.GappedRefine is set).
	GappedScore int
}

// Stats profiles one search, exposing the pipeline costs the paper
// discusses (hash build, lookups, extensions).
type Stats struct {
	IndexEntries int
	WordLookups  int
	WordHits     int
	Extensions   int
	HSPs         int
}

// Search runs the TBLASTN pipeline for query q over reference ref.
func Search(q bio.ProtSeq, ref bio.NucSeq, opts Options) ([]HSP, Stats, error) {
	opts = opts.Defaults()
	idx, err := BuildIndex(q, opts.NeighborThreshold)
	if err != nil {
		return nil, Stats{}, err
	}
	return SearchWithIndex(idx, ref, opts)
}

// SearchWithIndex runs the scan phase with a prebuilt query index
// (amortizing index construction over many references).
func SearchWithIndex(idx *Index, ref bio.NucSeq, opts Options) ([]HSP, Stats, error) {
	opts = opts.Defaults()
	if opts.Frames < 1 || opts.Frames > NumFrames {
		return nil, Stats{}, fmt.Errorf("tblastn: frames must be 1..6, got %d", opts.Frames)
	}
	var frames []TranslatedFrame
	if opts.Frames <= 3 {
		frames = Translate3(ref)[:opts.Frames]
	} else {
		frames = Translate6(ref)[:opts.Frames]
	}

	stats := Stats{IndexEntries: idx.Entries()}
	var mu sync.Mutex
	var all []HSP

	type job struct {
		frame  *TranslatedFrame
		lo, hi int // protein-position range to scan
	}
	var jobs []job
	// Split each frame into Threads chunks with WordSize-1 overlap so no
	// word is lost at boundaries. HSP dedup handles the overlap region.
	for fi := range frames {
		tf := &frames[fi]
		n := len(tf.Prot)
		if n < WordSize {
			continue
		}
		chunks := opts.Threads
		if chunks > n/256+1 {
			chunks = n/256 + 1
		}
		size := (n + chunks - 1) / chunks
		for lo := 0; lo < n; lo += size {
			hi := lo + size + WordSize - 1
			if hi > n {
				hi = n
			}
			jobs = append(jobs, job{frame: tf, lo: lo, hi: hi})
		}
	}

	sem := make(chan struct{}, opts.Threads)
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		sem <- struct{}{}
		go func(j job) {
			defer wg.Done()
			defer func() { <-sem }()
			hsps, st := scanFrame(idx, j.frame, j.lo, j.hi, opts)
			mu.Lock()
			all = append(all, hsps...)
			stats.WordLookups += st.WordLookups
			stats.WordHits += st.WordHits
			stats.Extensions += st.Extensions
			mu.Unlock()
		}(j)
	}
	wg.Wait()

	all = dedupe(all)

	// Karlin-Altschul statistics over the translated search space (every
	// frame's residues), then the optional E-value filter and gapped
	// refinement pass.
	params := kastats.UngappedBLOSUM62()
	dbResidues := 0
	for i := range frames {
		dbResidues += len(frames[i].Prot)
	}
	kept := all[:0]
	for _, h := range all {
		h.BitScore = params.BitScore(h.Score)
		h.EValue = params.EValue(h.Score, len(idx.Query), dbResidues)
		if opts.MaxEValue > 0 && h.EValue > opts.MaxEValue {
			continue
		}
		if opts.GappedRefine {
			h.GappedScore = refineGapped(idx.Query, &frames[int(h.Frame)], h, opts.RefineMargin)
		}
		kept = append(kept, h)
	}
	all = kept

	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		if all[i].Frame != all[j].Frame {
			return all[i].Frame < all[j].Frame
		}
		return all[i].SStart < all[j].SStart
	})
	if !opts.KeepContained {
		all = cullContained(all)
	}
	stats.HSPs = len(all)
	return all, stats, nil
}

// cullContained removes HSPs whose query and subject ranges both lie
// inside a higher-scoring HSP of the same frame (input sorted best-first).
func cullContained(hsps []HSP) []HSP {
	kept := hsps[:0]
	for _, h := range hsps {
		contained := false
		for _, k := range kept {
			if k.Frame == h.Frame &&
				k.QStart <= h.QStart && h.QEnd <= k.QEnd &&
				k.SStart <= h.SStart && h.SEnd <= k.SEnd {
				contained = true
				break
			}
		}
		if !contained {
			kept = append(kept, h)
		}
	}
	return kept
}

// scanFrame runs seeding + extension over subject positions [lo, hi).
func scanFrame(idx *Index, tf *TranslatedFrame, lo, hi int, opts Options) ([]HSP, Stats) {
	var st Stats
	var hsps []HSP
	q := idx.Query
	s := tf.Prot
	// lastHit[diag] is the subject position of the most recent word hit on
	// the diagonal; extended[diag] the subject end of the last HSP there.
	lastHit := map[int]int{}
	extended := map[int]int{}

	for j := lo; j+WordSize <= hi; j++ {
		st.WordLookups++
		positions := idx.Lookup(s[j], s[j+1], s[j+2])
		for _, qi := range positions {
			i := int(qi)
			st.WordHits++
			diag := j - i
			if end, done := extended[diag]; done && j < end {
				continue // already inside an HSP on this diagonal
			}
			trigger := !opts.TwoHit
			if opts.TwoHit {
				prev, ok := lastHit[diag]
				switch {
				case !ok || j-prev > opts.HitWindow:
					lastHit[diag] = j // first hit, or stale: restart the pair
				case j-prev < WordSize:
					// Overlapping the remembered hit: keep the earlier one.
				default:
					trigger = true
					delete(lastHit, diag)
				}
			}
			if !trigger {
				continue
			}
			st.Extensions++
			h, ok := extend(q, s, i, j, opts.XDrop)
			if ok && h.Score >= opts.MinScore {
				h.Frame = tf.Frame
				h.NucPos = tf.NucStart(h.SStart)
				hsps = append(hsps, h)
				extended[diag] = h.SEnd
			}
		}
	}
	return hsps, st
}

// extend performs ungapped X-drop extension around the seed word at query
// position i / subject position j.
func extend(q, s bio.ProtSeq, i, j, xdrop int) (HSP, bool) {
	// Seed score.
	score := 0
	for k := 0; k < WordSize; k++ {
		score += bio.Blosum62(q[i+k], s[j+k])
	}
	best := score
	qs, ss := i, j
	qe, se := i+WordSize, j+WordSize

	// Extend right.
	cur := best
	bi, bj := qe, se
	for x, y := qe, se; x < len(q) && y < len(s); x, y = x+1, y+1 {
		cur += bio.Blosum62(q[x], s[y])
		if cur > best {
			best = cur
			bi, bj = x+1, y+1
		}
		if best-cur > xdrop {
			break
		}
	}
	qe, se = bi, bj

	// Extend left.
	cur = best
	bi, bj = qs, ss
	for x, y := qs-1, ss-1; x >= 0 && y >= 0; x, y = x-1, y-1 {
		cur += bio.Blosum62(q[x], s[y])
		if cur > best {
			best = cur
			bi, bj = x, y
		}
		if best-cur > xdrop {
			break
		}
	}
	qs, ss = bi, bj

	if best <= 0 {
		return HSP{}, false
	}
	return HSP{QStart: qs, QEnd: qe, SStart: ss, SEnd: se, Score: best}, true
}

// refineGapped re-aligns the query against the HSP's subject neighbourhood
// with banded Smith-Waterman (the gapped extension stage of BLAST): the
// seed fixes the diagonal, so a corridor of ±margin diagonals suffices to
// recover alignments the ungapped pass truncated at indels.
func refineGapped(q bio.ProtSeq, tf *TranslatedFrame, h HSP, margin int) int {
	lo := h.SStart - len(q) - margin
	if lo < 0 {
		lo = 0
	}
	hi := h.SEnd + len(q) + margin
	if hi > len(tf.Prot) {
		hi = len(tf.Prot)
	}
	if lo >= hi {
		return 0
	}
	// The HSP pairs query position QStart with subject position SStart, so
	// within the window the alignment sits near diagonal (SStart-lo)-QStart.
	diag := (h.SStart - lo) - h.QStart
	return swalign.ScoreBanded(q, tf.Prot[lo:hi], swalign.DefaultScoring(), diag, margin)
}

// dedupe removes duplicate HSPs produced by chunk overlap (same frame,
// coordinates and score).
func dedupe(hsps []HSP) []HSP {
	seen := map[HSP]bool{}
	out := hsps[:0]
	for _, h := range hsps {
		if !seen[h] {
			seen[h] = true
			out = append(out, h)
		}
	}
	return out
}
