package tblastn

import (
	"context"
	"fmt"
	"sort"
	"time"

	"fabp/internal/bio"
	"fabp/internal/faultinject"
	"fabp/internal/sched"
	kastats "fabp/internal/stats"
	"fabp/internal/swalign"
)

// Sentinel option values. The zero Options selects BLAST-flavoured
// defaults, so "no cutoff" needs an explicit spelling.
const (
	// MinScoreAll disables the raw-score cutoff: every HSP the extender
	// produces is kept (extension itself requires a positive best score).
	// The zero value cannot express this because a zero Options selects
	// the BLAST default (35).
	MinScoreAll = -1

	// NeighborThresholdAll opens the neighborhood index to every word
	// pair scoring at least -1 — effectively every seed a productive
	// extension could start from. The zero value selects the BLAST
	// default (11).
	NeighborThresholdAll = -1
)

// Options tune the search pipeline; zero values take BLAST-like defaults
// via Resolve.
type Options struct {
	// NeighborThreshold is the word-pair score to enter the index (T).
	// Zero selects the BLAST default (11); NeighborThresholdAll admits
	// effectively every word pair.
	NeighborThreshold int
	// TwoHit requires two non-overlapping same-diagonal word hits within
	// HitWindow residues before extending (BLAST's default strategy).
	TwoHit bool
	// HitWindow is the two-hit distance window (A).
	HitWindow int
	// XDrop stops ungapped extension when the running score falls this far
	// below the best seen.
	XDrop int
	// MinScore discards HSPs scoring lower (raw BLOSUM score cutoff).
	// Zero selects the BLAST default (35); MinScoreAll keeps every HSP.
	MinScore int
	// Threads is the worker count (the paper measures 1 and 12). The HSP
	// set and Stats are invariant under Threads: shards record word hits
	// in subject order and a serial replay merge runs the exact seeding
	// state machine, so parallel output is byte-identical to serial.
	Threads int
	// Frames limits the search to the first N frames (3 = forward only,
	// matching FabP's single-strand scan; 6 = full TBLASTN).
	Frames int
	// MaxEValue, when positive, discards HSPs whose Karlin-Altschul
	// E-value exceeds it (applied after MinScore).
	MaxEValue float64
	// GappedRefine re-aligns each surviving HSP's neighbourhood with
	// Smith-Waterman (BLOSUM62, affine 11/1), filling GappedScore.
	GappedRefine bool
	// KeepContained disables the default culling of HSPs whose query and
	// subject ranges are contained in a higher-scoring same-frame HSP
	// (BLAST's dominance filter).
	KeepContained bool
	// RefineMargin is the residue margin around the HSP used for gapped
	// refinement (default 20).
	RefineMargin int
}

// Resolve fills unset fields with BLAST-flavoured values and validates
// the rest. It is idempotent: resolving a resolved Options is a no-op,
// so callers may pass either raw or resolved options to Search*. The
// *All sentinels (-1) pass through unchanged and are honoured by the
// pipeline; other negative values are rejected.
func (o Options) Resolve() (Options, error) {
	switch {
	case o.NeighborThreshold == 0:
		o.NeighborThreshold = 11
	case o.NeighborThreshold < NeighborThresholdAll:
		return o, fmt.Errorf("tblastn: neighbor threshold %d invalid (use NeighborThresholdAll for maximal seeding)", o.NeighborThreshold)
	}
	switch {
	case o.MinScore == 0:
		o.MinScore = 35
	case o.MinScore < MinScoreAll:
		return o, fmt.Errorf("tblastn: min score %d invalid (use MinScoreAll to keep every HSP)", o.MinScore)
	}
	switch {
	case o.Threads == 0:
		o.Threads = 1
	case o.Threads < 0:
		return o, fmt.Errorf("tblastn: threads must be non-negative, got %d", o.Threads)
	}
	switch {
	case o.HitWindow == 0:
		o.HitWindow = 40
	case o.HitWindow < 0:
		return o, fmt.Errorf("tblastn: hit window must be non-negative, got %d", o.HitWindow)
	}
	switch {
	case o.XDrop == 0:
		o.XDrop = 16
	case o.XDrop < 0:
		return o, fmt.Errorf("tblastn: x-drop must be non-negative, got %d", o.XDrop)
	}
	switch {
	case o.Frames == 0:
		o.Frames = NumFrames
	case o.Frames < 1 || o.Frames > NumFrames:
		return o, fmt.Errorf("tblastn: frames must be 1..6, got %d", o.Frames)
	}
	switch {
	case o.RefineMargin == 0:
		o.RefineMargin = 20
	case o.RefineMargin < 0:
		return o, fmt.Errorf("tblastn: refine margin must be non-negative, got %d", o.RefineMargin)
	}
	if o.MaxEValue < 0 || o.MaxEValue != o.MaxEValue {
		return o, fmt.Errorf("tblastn: max E-value must be non-negative, got %v", o.MaxEValue)
	}
	return o, nil
}

// Defaults fills unset fields with BLAST-flavoured values. It is
// Resolve without the validation: invalid fields pass through and fail
// inside Search. Kept for callers that only want the default view.
func (o Options) Defaults() Options {
	r, err := o.Resolve()
	if err != nil {
		return o
	}
	return r
}

// HSP is a high-scoring segment pair: an ungapped local alignment between
// the query and one translated frame.
type HSP struct {
	Frame Frame
	// QStart/QEnd delimit the query residues (half-open).
	QStart, QEnd int
	// SStart/SEnd delimit the frame's protein positions (half-open).
	SStart, SEnd int
	// Score is the raw BLOSUM62 segment score.
	Score int
	// NucPos is the forward-strand nucleotide offset of the subject
	// segment's lowest-address codon base.
	NucPos int
	// BitScore and EValue are Karlin-Altschul statistics over the search
	// space (ungapped BLOSUM62 parameters).
	BitScore float64
	EValue   float64
	// GappedScore is the Smith-Waterman score of the refined alignment
	// window (0 unless Options.GappedRefine is set).
	GappedScore int
}

// Stats profiles one search, exposing the pipeline costs the paper
// discusses (hash build, lookups, extensions). All fields are invariant
// under Options.Threads; speculative extension work done by shards and
// discarded at merge is reported only on the tblastn.extensions.speculative
// telemetry counter.
type Stats struct {
	IndexEntries int
	WordLookups  int
	WordHits     int
	Extensions   int
	HSPs         int
}

// Search runs the TBLASTN pipeline for query q over reference ref.
func Search(q bio.ProtSeq, ref bio.NucSeq, opts Options) ([]HSP, Stats, error) {
	return SearchContext(context.Background(), q, ref, opts)
}

// SearchContext is Search with cancellation: the scan observes ctx at
// shard dispatch, shard merge, and periodically inside serial frame
// scans, returning ctx.Err() once it fires.
func SearchContext(ctx context.Context, q bio.ProtSeq, ref bio.NucSeq, opts Options) ([]HSP, Stats, error) {
	o, err := opts.Resolve()
	if err != nil {
		return nil, Stats{}, err
	}
	idx, err := BuildIndex(q, o.NeighborThreshold)
	if err != nil {
		return nil, Stats{}, err
	}
	return searchWithIndex(ctx, idx, ref, &o)
}

// SearchWithIndex runs the scan phase with a prebuilt query index
// (amortizing index construction over many references).
func SearchWithIndex(idx *Index, ref bio.NucSeq, opts Options) ([]HSP, Stats, error) {
	return SearchWithIndexContext(context.Background(), idx, ref, opts)
}

// SearchWithIndexContext is SearchWithIndex with cancellation.
func SearchWithIndexContext(ctx context.Context, idx *Index, ref bio.NucSeq, opts Options) ([]HSP, Stats, error) {
	o, err := opts.Resolve()
	if err != nil {
		return nil, Stats{}, err
	}
	return searchWithIndex(ctx, idx, ref, &o)
}

// searchWithIndex runs the pipeline on resolved options.
func searchWithIndex(ctx context.Context, idx *Index, ref bio.NucSeq, o *Options) ([]HSP, Stats, error) {
	tm.searches.Inc()
	start := time.Now()
	defer func() { tm.scanLatency.Observe(time.Since(start)) }()

	if err := ctx.Err(); err != nil {
		tm.canceled.Inc()
		return nil, Stats{}, err
	}

	var frames []TranslatedFrame
	if o.Frames <= 3 {
		frames = Translate3(ref)[:o.Frames]
	} else {
		frames = Translate6(ref)[:o.Frames]
	}

	stats := Stats{IndexEntries: idx.Entries()}
	var all []HSP
	var err error
	if o.Threads == 1 {
		all, err = scanSerial(ctx, idx, frames, o, &stats)
	} else {
		all, err = scanSharded(ctx, idx, frames, o, &stats)
	}
	if err != nil {
		tm.canceled.Inc()
		return nil, Stats{}, err
	}

	// Karlin-Altschul statistics over the translated search space (every
	// frame's residues), then the optional E-value filter and gapped
	// refinement pass.
	params := kastats.UngappedBLOSUM62()
	dbResidues := 0
	for i := range frames {
		dbResidues += len(frames[i].Prot)
	}
	kept := all[:0]
	for _, h := range all {
		h.BitScore = params.BitScore(h.Score)
		h.EValue = params.EValue(h.Score, len(idx.Query), dbResidues)
		if o.MaxEValue > 0 && h.EValue > o.MaxEValue {
			continue
		}
		if o.GappedRefine {
			h.GappedScore = refineGapped(idx.Query, &frames[int(h.Frame)], h, o.RefineMargin)
		}
		kept = append(kept, h)
	}
	all = kept

	sort.Slice(all, func(i, j int) bool { return lessHSP(&all[i], &all[j]) })
	if !o.KeepContained {
		all = cullContained(all)
	}
	stats.HSPs = len(all)

	tm.wordLookups.Add(uint64(stats.WordLookups))
	tm.wordHits.Add(uint64(stats.WordHits))
	tm.extensions.Add(uint64(stats.Extensions))
	tm.hsps.Add(uint64(stats.HSPs))
	return all, stats, nil
}

// lessHSP is the result ordering: score-descending, then ascending on
// every coordinate so equal-scoring HSPs have a total order and the
// final sort (and the cullContained pass that walks it) is deterministic
// regardless of arrival order.
func lessHSP(a, b *HSP) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	if a.Frame != b.Frame {
		return a.Frame < b.Frame
	}
	if a.SStart != b.SStart {
		return a.SStart < b.SStart
	}
	if a.QStart != b.QStart {
		return a.QStart < b.QStart
	}
	if a.QEnd != b.QEnd {
		return a.QEnd < b.QEnd
	}
	return a.SEnd < b.SEnd
}

// diagState is the per-frame seeding state machine: two-hit pairing and
// extension suppression per diagonal. The serial scan and the sharded
// replay merge both drive this exact type, which is what makes the
// parallel path byte-identical to the serial one.
type diagState struct {
	twoHit    bool
	hitWindow int
	// lastHit[diag] is the subject position of the most recent unpaired
	// word hit on the diagonal; extended[diag] the subject end of the
	// last HSP accepted there.
	lastHit  map[int]int
	extended map[int]int
}

func newDiagState(o *Options) diagState {
	return diagState{
		twoHit:    o.TwoHit,
		hitWindow: o.HitWindow,
		lastHit:   map[int]int{},
		extended:  map[int]int{},
	}
}

// step feeds the word hit (query position i, subject position j) into
// the machine and reports whether it triggers an extension. Hits must
// arrive in non-decreasing subject order.
func (ds *diagState) step(i, j int) bool {
	diag := j - i
	if end, done := ds.extended[diag]; done && j < end {
		return false // already inside an HSP on this diagonal
	}
	if !ds.twoHit {
		return true
	}
	prev, ok := ds.lastHit[diag]
	switch {
	case !ok || j-prev > ds.hitWindow:
		ds.lastHit[diag] = j // first hit, or stale: restart the pair
	case j-prev < WordSize:
		// Overlapping the remembered hit: keep the earlier one.
	default:
		delete(ds.lastHit, diag)
		return true
	}
	return false
}

// accept records an accepted HSP's extent so later hits inside it are
// suppressed.
func (ds *diagState) accept(diag, sEnd int) { ds.extended[diag] = sEnd }

// ctxCheckStride is how many subject positions a serial scan covers
// between context checks.
const ctxCheckStride = 4096

// scanSerial is the canonical single-pass scan: the oracle every
// parallel execution reproduces exactly.
func scanSerial(ctx context.Context, idx *Index, frames []TranslatedFrame, o *Options, st *Stats) ([]HSP, error) {
	var all []HSP
	q := idx.Query
	for fi := range frames {
		tf := &frames[fi]
		s := tf.Prot
		ds := newDiagState(o)
		for j := 0; j+WordSize <= len(s); j++ {
			if j%ctxCheckStride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			st.WordLookups++
			for _, qi := range idx.Lookup(s[j], s[j+1], s[j+2]) {
				st.WordHits++
				i := int(qi)
				if !ds.step(i, j) {
					continue
				}
				st.Extensions++
				h, ok := extend(q, s, i, j, o.XDrop)
				if ok && h.Score >= o.MinScore {
					h.Frame = tf.Frame
					h.NucPos = tf.NucStart(h.SStart)
					all = append(all, h)
					ds.accept(j-i, h.SEnd)
				}
			}
		}
	}
	return all, nil
}

// seedHit is one recorded word hit (subject position j, query position i).
type seedHit struct{ j, i int32 }

// extKey addresses a speculative extension by its seed.
type extKey struct{ i, j int32 }

type extResult struct {
	h  HSP
	ok bool
}

// shardScan is one shard's output: every word hit over its subject range
// in visit order, plus the extensions its locally-warmed state machine
// predicted would trigger.
type shardScan struct {
	hits []seedHit
	ext  map[extKey]extResult
	st   Stats
}

// minShardStarts floors the shard size so tiny shards don't drown the
// scan in scheduling overhead (PlanRange additionally rounds to 64).
const minShardStarts = 512

// searchShardLen picks the subject-range tile size: roughly four shards
// per worker over the whole translated space, floored at minShardStarts.
func searchShardLen(totalStarts, threads int) int {
	n := totalStarts / (threads * 4)
	if n < minShardStarts {
		n = minShardStarts
	}
	return n
}

// scanSharded fans frame scans out over a sched pool and then replays
// the recorded word hits serially. Shards cannot run the seeding state
// machine exactly — two-hit pairs and HSP suppression cross shard
// boundaries — so each shard records every hit in subject order and
// *speculates* on extensions using a state machine warmed with a
// HitWindow look-back. The merge replays all hits, in serial order,
// through a fresh machine per frame: where the shard guessed right the
// precomputed extension is reused; where it guessed wrong the extension
// runs inline. extend() is a pure function of its seed, so speculation
// can never change the result — the merge output is byte-identical to
// scanSerial by construction.
func scanSharded(ctx context.Context, idx *Index, frames []TranslatedFrame, o *Options, st *Stats) ([]HSP, error) {
	type shardJob struct {
		frame  int
		lo, hi int // subject word-start range
	}
	totalStarts := 0
	for fi := range frames {
		if n := len(frames[fi].Prot) - WordSize + 1; n > 0 {
			totalStarts += n
		}
	}
	var jobs []shardJob
	shardLen := searchShardLen(totalStarts, o.Threads)
	for fi := range frames {
		n := len(frames[fi].Prot) - WordSize + 1
		for _, sh := range sched.PlanRange(0, n, shardLen) {
			jobs = append(jobs, shardJob{frame: fi, lo: sh.Lo, hi: sh.Hi})
		}
	}

	results := make([]*shardScan, len(jobs))
	pool := sched.NewPool(o.Threads)
	if err := pool.EachCtx(ctx, len(jobs), func(k int) {
		if ctx.Err() != nil {
			return // shed: the merge spots the missing shard below
		}
		j := jobs[k]
		results[k] = speculateShard(idx, &frames[j.frame], j.lo, j.hi, o)
	}); err != nil {
		return nil, err
	}

	speculated := uint64(0)
	for _, sc := range results {
		if sc == nil {
			// A shard was shed after the dispatch loop had already
			// drained: surface the cancellation EachCtx missed.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return nil, context.Canceled
		}
		speculated += uint64(len(sc.ext))
	}
	tm.speculative.Add(speculated)

	// Serial replay merge, frame by frame, shard by shard in subject
	// order — the exact hit sequence scanSerial sees.
	var all []HSP
	q := idx.Query
	cursor := 0
	for fi := range frames {
		tf := &frames[fi]
		s := tf.Prot
		ds := newDiagState(o)
		for ; cursor < len(jobs) && jobs[cursor].frame == fi; cursor++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := faultinject.Check(ctx, faultinject.SiteShardMerge, uint64(cursor)); err != nil {
				return nil, err
			}
			sc := results[cursor]
			st.WordLookups += sc.st.WordLookups
			st.WordHits += sc.st.WordHits
			for _, sh := range sc.hits {
				i, j := int(sh.i), int(sh.j)
				if !ds.step(i, j) {
					continue
				}
				st.Extensions++
				r, found := sc.ext[extKey{i: sh.i, j: sh.j}]
				if !found {
					r.h, r.ok = extend(q, s, i, j, o.XDrop)
				}
				if r.ok && r.h.Score >= o.MinScore {
					h := r.h
					h.Frame = tf.Frame
					h.NucPos = tf.NucStart(h.SStart)
					all = append(all, h)
					ds.accept(j-i, h.SEnd)
				}
			}
		}
	}
	return all, nil
}

// speculateShard scans subject word starts [lo, hi) of one frame,
// recording every word hit in visit order and precomputing the X-drop
// extension for each seed its boundary-warmed local state machine
// predicts will trigger. The two-hit warm-up replays [lo-HitWindow, lo)
// so pairs straddling the shard boundary trigger here as they do
// serially; cross-boundary HSP suppression stays approximate, and the
// replay merge corrects any misprediction either way.
func speculateShard(idx *Index, tf *TranslatedFrame, lo, hi int, o *Options) *shardScan {
	sc := &shardScan{ext: map[extKey]extResult{}}
	q, s := idx.Query, tf.Prot
	ds := newDiagState(o)
	if o.TwoHit {
		warm := lo - o.HitWindow
		if warm < 0 {
			warm = 0
		}
		for j := warm; j < lo; j++ {
			for _, qi := range idx.Lookup(s[j], s[j+1], s[j+2]) {
				ds.step(int(qi), j)
			}
		}
	}
	for j := lo; j < hi; j++ {
		sc.st.WordLookups++
		for _, qi := range idx.Lookup(s[j], s[j+1], s[j+2]) {
			sc.st.WordHits++
			i := int(qi)
			sc.hits = append(sc.hits, seedHit{j: int32(j), i: int32(i)})
			if !ds.step(i, j) {
				continue
			}
			var r extResult
			r.h, r.ok = extend(q, s, i, j, o.XDrop)
			sc.ext[extKey{i: int32(i), j: int32(j)}] = r
			if r.ok && r.h.Score >= o.MinScore {
				ds.accept(j-i, r.h.SEnd)
			}
		}
	}
	return sc
}

// cullContained removes HSPs whose query and subject ranges both lie
// inside a higher-scoring HSP of the same frame (input sorted best-first).
func cullContained(hsps []HSP) []HSP {
	kept := hsps[:0]
	for _, h := range hsps {
		contained := false
		for _, k := range kept {
			if k.Frame == h.Frame &&
				k.QStart <= h.QStart && h.QEnd <= k.QEnd &&
				k.SStart <= h.SStart && h.SEnd <= k.SEnd {
				contained = true
				break
			}
		}
		if !contained {
			kept = append(kept, h)
		}
	}
	return kept
}

// extend performs ungapped X-drop extension around the seed word at query
// position i / subject position j. It is a pure function of (q, s, i, j,
// xdrop) — the speculation in scanSharded depends on this.
func extend(q, s bio.ProtSeq, i, j, xdrop int) (HSP, bool) {
	// Seed score.
	score := 0
	for k := 0; k < WordSize; k++ {
		score += bio.Blosum62(q[i+k], s[j+k])
	}
	best := score
	qs, ss := i, j
	qe, se := i+WordSize, j+WordSize

	// Extend right.
	cur := best
	bi, bj := qe, se
	for x, y := qe, se; x < len(q) && y < len(s); x, y = x+1, y+1 {
		cur += bio.Blosum62(q[x], s[y])
		if cur > best {
			best = cur
			bi, bj = x+1, y+1
		}
		if best-cur > xdrop {
			break
		}
	}
	qe, se = bi, bj

	// Extend left.
	cur = best
	bi, bj = qs, ss
	for x, y := qs-1, ss-1; x >= 0 && y >= 0; x, y = x-1, y-1 {
		cur += bio.Blosum62(q[x], s[y])
		if cur > best {
			best = cur
			bi, bj = x, y
		}
		if best-cur > xdrop {
			break
		}
	}
	qs, ss = bi, bj

	if best <= 0 {
		return HSP{}, false
	}
	return HSP{QStart: qs, QEnd: qe, SStart: ss, SEnd: se, Score: best}, true
}

// refineGapped re-aligns the query against the HSP's subject neighbourhood
// with banded Smith-Waterman (the gapped extension stage of BLAST): the
// seed fixes the diagonal, so a corridor of ±margin diagonals suffices to
// recover alignments the ungapped pass truncated at indels.
func refineGapped(q bio.ProtSeq, tf *TranslatedFrame, h HSP, margin int) int {
	lo := h.SStart - len(q) - margin
	if lo < 0 {
		lo = 0
	}
	hi := h.SEnd + len(q) + margin
	if hi > len(tf.Prot) {
		hi = len(tf.Prot)
	}
	if lo >= hi {
		return 0
	}
	// The HSP pairs query position QStart with subject position SStart, so
	// within the window the alignment sits near diagonal (SStart-lo)-QStart.
	diag := (h.SStart - lo) - h.QStart
	return swalign.ScoreBanded(q, tf.Prot[lo:hi], swalign.DefaultScoring(), diag, margin)
}
