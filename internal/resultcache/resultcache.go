// Package resultcache is a content-addressed scan-result cache with
// singleflight collapse: a byte-bounded LRU over immutable results keyed
// by content digests, where N concurrent requests for one missing key
// trigger exactly one computation.
//
// The cache exists because real protein-search traffic is repetitive —
// the same query against the same reference database is a pure function
// of (query program, database content, threshold, kernel, shard
// geometry), all of which the caller folds into the key — so serving a
// repeat from memory is always bit-exact with rescanning. The FPGA
// deployments the paper's line of work describes win as much from this
// kind of host-side reuse as from the kernel itself: the accelerator
// scans once, the host answers everyone.
//
// Flight lifecycle: the first caller for a missing key becomes the
// flight's creator and the computation runs on its own goroutine under a
// context owned by the flight, NOT by the creator. Every caller —
// creator and late joiners alike — waits under its own context, so a
// joiner with a tight deadline abandons the wait without disturbing the
// others, and a canceled creator hands the running flight off to the
// surviving waiters instead of failing it. Only when the last waiter
// leaves is the computation itself canceled. Results are cached only on
// clean success (no error, flight context intact); errors — including
// partial/degraded completions, which arrive as a result beside an
// error — are delivered to every waiter present and never cached.
package resultcache

import (
	"context"
	"sync"
)

// Outcome classifies how a Do call was served.
type Outcome int

const (
	// OutcomeMiss: this caller created the flight and its computation
	// produced the result.
	OutcomeMiss Outcome = iota
	// OutcomeHit: the result was resident in the cache.
	OutcomeHit
	// OutcomeShared: this caller joined another caller's in-flight
	// computation and shared its result.
	OutcomeShared
)

// String renders the outcome for logs and response provenance fields.
func (o Outcome) String() string {
	switch o {
	case OutcomeMiss:
		return "miss"
	case OutcomeHit:
		return "hit"
	case OutcomeShared:
		return "shared"
	}
	return "unknown"
}

// Stats is a point-in-time view of the cache: cumulative counters
// (monotone between ResetStats calls) and the resident footprint.
type Stats struct {
	// Hits/Misses count Do and Get lookups against resident entries;
	// a Do that joins an in-flight computation counts on Collapsed
	// instead (the flight's creator already counted the miss).
	Hits, Misses uint64
	// Evictions counts entries dropped for capacity (SetCapacity
	// shrinks included).
	Evictions uint64
	// Collapsed counts Do calls that joined an existing flight — scans
	// that never ran because an identical one was already running.
	Collapsed uint64
	// Handoffs counts flights whose creator abandoned the wait while
	// other waiters remained: the computation kept running and a waiter
	// took delivery instead.
	Handoffs uint64
	// Entries and ResidentBytes are the current footprint;
	// CapacityBytes is the configured bound (0 = disabled).
	Entries       int
	ResidentBytes int64
	CapacityBytes int64
}

// entry is one resident result.
type entry[V any] struct {
	val     V
	bytes   int64
	lastUse uint64
}

// flight is one in-progress computation. done is closed after val/err
// are set; cancel aborts the computation's context (called when the
// last waiter leaves, and always after settlement to release the ctx).
type flight[V any] struct {
	done    chan struct{}
	cancel  context.CancelFunc
	waiters int
	val     V
	bytes   int64
	err     error
}

// Cache is a byte-bounded LRU of immutable values with singleflight
// collapse. All methods are safe for concurrent use. Values handed out
// are shared across callers and MUST be treated as read-only.
type Cache[K comparable, V any] struct {
	mu       sync.Mutex
	capBytes int64
	resident int64
	tick     uint64
	entries  map[K]*entry[V]
	flights  map[K]*flight[V]
	stats    Stats
}

// New builds a cache bounded to capBytes of cached-value bytes (as
// reported by each computation's size). capBytes <= 0 disables caching:
// Do still collapses concurrent identical calls, but nothing is retained.
func New[K comparable, V any](capBytes int64) *Cache[K, V] {
	c := &Cache[K, V]{
		entries: make(map[K]*entry[V]),
		flights: make(map[K]*flight[V]),
	}
	if capBytes > 0 {
		c.capBytes = capBytes
	}
	return c
}

// Enabled reports whether the cache retains results (capacity > 0).
func (c *Cache[K, V]) Enabled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.capBytes > 0
}

// SetCapacity rebounds the cache to capBytes, evicting LRU entries that
// no longer fit. Zero or negative disables caching and drops every
// resident entry (in-progress flights settle normally but are not
// retained). Cumulative stats survive.
func (c *Cache[K, V]) SetCapacity(capBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if capBytes <= 0 {
		capBytes = 0
	}
	c.capBytes = capBytes
	c.evictLocked(0)
}

// Capacity returns the configured byte bound (0 = disabled).
func (c *Cache[K, V]) Capacity() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.capBytes
}

// Get peeks for a resident entry without joining or starting a flight —
// the fast-path probe for callers that only pay a lookup (e.g. a server
// answering from cache before admission control). A present entry
// counts as a hit and refreshes its recency; an absent one counts
// nothing (the follow-up Do will count the miss).
func (c *Cache[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.stats.Hits++
	c.tick++
	e.lastUse = c.tick
	return e.val, true
}

// Do returns the value for key, computing it at most once across
// concurrent callers. compute receives the flight's own context, which
// is canceled only when every waiting caller has abandoned the flight —
// one caller's cancellation never aborts a scan other callers still
// want. compute's size return is the value's cached footprint in bytes.
//
// The value is cached only when compute returns a nil error with the
// flight context intact. A non-nil error — optionally alongside a
// partial value — is delivered to every caller waiting at settlement
// and nothing is retained, so degraded results never serve later
// requests. A caller whose own ctx fires first returns ctx.Err() with a
// zero value; the flight continues for the rest.
func (c *Cache[K, V]) Do(ctx context.Context, key K, compute func(ctx context.Context) (V, int64, error)) (V, Outcome, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.stats.Hits++
		c.tick++
		e.lastUse = c.tick
		v := e.val
		c.mu.Unlock()
		return v, OutcomeHit, nil
	}
	if f, ok := c.flights[key]; ok {
		f.waiters++
		c.stats.Collapsed++
		c.mu.Unlock()
		return c.wait(ctx, key, f, OutcomeShared)
	}
	c.stats.Misses++
	fctx, cancel := context.WithCancel(context.Background())
	f := &flight[V]{done: make(chan struct{}), cancel: cancel, waiters: 1}
	c.flights[key] = f
	c.mu.Unlock()
	go c.run(key, f, fctx, compute)
	return c.wait(ctx, key, f, OutcomeMiss)
}

// run executes one flight's computation and settles it.
func (c *Cache[K, V]) run(key K, f *flight[V], fctx context.Context, compute func(ctx context.Context) (V, int64, error)) {
	v, n, err := compute(fctx)
	c.mu.Lock()
	f.val, f.bytes, f.err = v, n, err
	if c.flights[key] == f {
		delete(c.flights, key)
	}
	if err == nil && fctx.Err() == nil {
		c.insertLocked(key, v, n)
	}
	c.mu.Unlock()
	close(f.done)
	f.cancel()
}

// wait blocks one caller on a flight under that caller's own context.
func (c *Cache[K, V]) wait(ctx context.Context, key K, f *flight[V], outcome Outcome) (V, Outcome, error) {
	select {
	case <-f.done:
		c.mu.Lock()
		f.waiters--
		c.mu.Unlock()
		return f.val, outcome, f.err
	case <-ctx.Done():
	}
	// This caller abandons the flight. If others remain the computation
	// keeps running for them — a departing creator is a handoff, not a
	// failure. Only the last departure cancels the computation and
	// unmaps the flight so the next caller starts fresh.
	c.mu.Lock()
	f.waiters--
	select {
	case <-f.done:
		// Settled between the ctx firing and taking the lock: honor the
		// caller's cancellation anyway (the result stays cached for the
		// next request).
	default:
		if f.waiters == 0 {
			if c.flights[key] == f {
				delete(c.flights, key)
			}
			f.cancel()
		} else if outcome == OutcomeMiss {
			c.stats.Handoffs++
		}
	}
	c.mu.Unlock()
	var zero V
	return zero, outcome, ctx.Err()
}

// insertLocked makes a value resident, evicting LRU entries to fit.
// Values larger than the whole capacity are not retained.
func (c *Cache[K, V]) insertLocked(key K, v V, n int64) {
	if c.capBytes <= 0 || n > c.capBytes {
		return
	}
	if old, ok := c.entries[key]; ok {
		// A concurrent flight for an evicted key can re-insert while an
		// older entry is resident again; replace, keeping bytes honest.
		c.resident -= old.bytes
		delete(c.entries, key)
	}
	c.evictLocked(n)
	c.tick++
	c.entries[key] = &entry[V]{val: v, bytes: n, lastUse: c.tick}
	c.resident += n
}

// evictLocked drops least-recently-used entries until resident+incoming
// fits the capacity.
func (c *Cache[K, V]) evictLocked(incoming int64) {
	for len(c.entries) > 0 && c.resident+incoming > c.capBytes {
		var victim K
		var oldest uint64
		found := false
		for k, e := range c.entries {
			if !found || e.lastUse < oldest {
				victim, oldest, found = k, e.lastUse, true
			}
		}
		if !found {
			return
		}
		c.resident -= c.entries[victim].bytes
		delete(c.entries, victim)
		c.stats.Evictions++
	}
}

// Invalidate drops one key (no-op when absent). In-flight computations
// for the key are unaffected; their result will re-insert on success.
func (c *Cache[K, V]) Invalidate(key K) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		c.resident -= e.bytes
		delete(c.entries, key)
	}
}

// Purge drops every resident entry (stats and capacity survive).
func (c *Cache[K, V]) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[K]*entry[V])
	c.resident = 0
}

// Len returns the resident entry count.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns the cache's cumulative counters and current footprint.
func (c *Cache[K, V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	s.ResidentBytes = c.resident
	s.CapacityBytes = c.capBytes
	return s
}

// ResetStats zeroes the cumulative counters (resident entries stay).
func (c *Cache[K, V]) ResetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats = Stats{}
}
