package resultcache

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// computeValue is a compute function returning v with a fixed byte size.
func computeValue(v string, bytes int64) func(context.Context) (string, int64, error) {
	return func(context.Context) (string, int64, error) { return v, bytes, nil }
}

func TestHitMissAndStats(t *testing.T) {
	c := New[string, string](1 << 10)
	ctx := context.Background()

	v, out, err := c.Do(ctx, "k1", computeValue("v1", 100))
	if err != nil || v != "v1" || out != OutcomeMiss {
		t.Fatalf("first Do: v=%q out=%v err=%v", v, out, err)
	}
	v, out, err = c.Do(ctx, "k1", computeValue("WRONG", 100))
	if err != nil || v != "v1" || out != OutcomeHit {
		t.Fatalf("second Do: v=%q out=%v err=%v", v, out, err)
	}
	if v, ok := c.Get("k1"); !ok || v != "v1" {
		t.Fatalf("Get: v=%q ok=%v", v, ok)
	}
	if _, ok := c.Get("absent"); ok {
		t.Fatal("Get(absent) reported a hit")
	}

	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 || s.Entries != 1 || s.ResidentBytes != 100 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := New[string, string](300)
	ctx := context.Background()
	for _, k := range []string{"a", "b", "c"} {
		if _, _, err := c.Do(ctx, k, computeValue(k, 100)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch "a" so "b" is now least recently used.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted prematurely")
	}
	if _, _, err := c.Do(ctx, "d", computeValue("d", 100)); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction; LRU order wrong")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s missing after eviction", k)
		}
	}
	if s := c.Stats(); s.Evictions != 1 || s.ResidentBytes != 300 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestOversizedValueNotCached(t *testing.T) {
	c := New[string, string](100)
	if _, _, err := c.Do(context.Background(), "big", computeValue("big", 500)); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatal("oversized value was cached")
	}
}

func TestSetCapacityShrinkAndDisable(t *testing.T) {
	c := New[string, string](400)
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		k := fmt.Sprintf("k%d", i)
		if _, _, err := c.Do(ctx, k, computeValue(k, 100)); err != nil {
			t.Fatal(err)
		}
	}
	c.SetCapacity(150)
	if s := c.Stats(); s.Entries != 1 || s.ResidentBytes != 100 {
		t.Fatalf("after shrink: %+v", s)
	}
	c.SetCapacity(0)
	if c.Enabled() || c.Len() != 0 {
		t.Fatalf("disable did not drop entries: enabled=%v len=%d", c.Enabled(), c.Len())
	}
	// Disabled cache computes every time, retains nothing.
	var runs atomic.Int32
	for i := 0; i < 2; i++ {
		_, out, err := c.Do(ctx, "k", func(context.Context) (string, int64, error) {
			runs.Add(1)
			return "v", 10, nil
		})
		if err != nil || out != OutcomeMiss {
			t.Fatalf("disabled Do: out=%v err=%v", out, err)
		}
	}
	if runs.Load() != 2 {
		t.Fatalf("disabled cache ran compute %d times, want 2", runs.Load())
	}
}

func TestSingleflightCollapse(t *testing.T) {
	c := New[string, string](1 << 10)
	var runs atomic.Int32
	release := make(chan struct{})
	started := make(chan struct{})

	const n = 50
	var wg sync.WaitGroup
	outcomes := make([]Outcome, n)
	vals := make([]string, n)
	errs := make([]error, n)

	wg.Add(1)
	go func() {
		defer wg.Done()
		vals[0], outcomes[0], errs[0] = c.Do(context.Background(), "k", func(context.Context) (string, int64, error) {
			runs.Add(1)
			close(started)
			<-release
			return "v", 10, nil
		})
	}()
	<-started
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], outcomes[i], errs[i] = c.Do(context.Background(), "k", func(context.Context) (string, int64, error) {
				runs.Add(1)
				return "v", 10, nil
			})
		}(i)
	}
	// Let the joiners enqueue before releasing the flight.
	for c.Stats().Collapsed < n-1 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	for i := range vals {
		if errs[i] != nil || vals[i] != "v" {
			t.Fatalf("caller %d: v=%q err=%v", i, vals[i], errs[i])
		}
	}
	if outcomes[0] != OutcomeMiss {
		t.Fatalf("creator outcome = %v, want miss", outcomes[0])
	}
	for i := 1; i < n; i++ {
		if outcomes[i] != OutcomeShared {
			t.Fatalf("joiner %d outcome = %v, want shared", i, outcomes[i])
		}
	}
	if s := c.Stats(); s.Collapsed != n-1 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestLeaderCancelHandsOffToWaiter is the tentpole's handoff contract: a
// canceled flight creator must not abort the computation while a joiner
// still wants it — the joiner takes delivery instead.
func TestLeaderCancelHandsOffToWaiter(t *testing.T) {
	c := New[string, string](1 << 10)
	started := make(chan struct{})
	release := make(chan struct{})
	var computeCtxErr error
	var mu sync.Mutex

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := c.Do(leaderCtx, "k", func(fctx context.Context) (string, int64, error) {
			close(started)
			<-release
			mu.Lock()
			computeCtxErr = fctx.Err()
			mu.Unlock()
			return "v", 10, nil
		})
		leaderDone <- err
	}()
	<-started

	waiterDone := make(chan struct{})
	var waiterVal string
	var waiterOut Outcome
	var waiterErr error
	go func() {
		defer close(waiterDone)
		waiterVal, waiterOut, waiterErr = c.Do(context.Background(), "k", computeValue("WRONG", 10))
	}()
	for c.Stats().Collapsed == 0 {
		time.Sleep(time.Millisecond)
	}

	// Cancel the leader while the flight is mid-compute with one waiter.
	cancelLeader()
	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v, want context.Canceled", err)
	}
	for c.Stats().Handoffs == 0 {
		time.Sleep(time.Millisecond)
	}

	close(release)
	<-waiterDone
	if waiterErr != nil || waiterVal != "v" || waiterOut != OutcomeShared {
		t.Fatalf("waiter: v=%q out=%v err=%v", waiterVal, waiterOut, waiterErr)
	}
	mu.Lock()
	defer mu.Unlock()
	if computeCtxErr != nil {
		t.Fatalf("flight context was canceled (%v) despite a live waiter", computeCtxErr)
	}
	// The handed-off result is a clean success and must be cached.
	if v, ok := c.Get("k"); !ok || v != "v" {
		t.Fatalf("handed-off result not cached: v=%q ok=%v", v, ok)
	}
}

// TestAllCallersCancelAbortsFlight: when every caller leaves, the flight
// context is canceled, nothing is cached, and the next Do recomputes.
func TestAllCallersCancelAbortsFlight(t *testing.T) {
	c := New[string, string](1 << 10)
	started := make(chan struct{})
	aborted := make(chan struct{})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Do(ctx, "k", func(fctx context.Context) (string, int64, error) {
			close(started)
			<-fctx.Done()
			close(aborted)
			return "partial", 10, fctx.Err()
		})
		done <- err
	}()
	<-started
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("caller err = %v", err)
	}
	select {
	case <-aborted:
	case <-time.After(2 * time.Second):
		t.Fatal("flight context never canceled after last caller left")
	}
	if c.Len() != 0 {
		t.Fatal("aborted flight's value was cached")
	}
	// Fresh flight afterwards.
	v, out, err := c.Do(context.Background(), "k", computeValue("v2", 10))
	if err != nil || v != "v2" || out != OutcomeMiss {
		t.Fatalf("post-abort Do: v=%q out=%v err=%v", v, out, err)
	}
}

func TestErrorDeliveredNotCached(t *testing.T) {
	c := New[string, string](1 << 10)
	boom := errors.New("boom")
	var runs atomic.Int32

	v, out, err := c.Do(context.Background(), "k", func(context.Context) (string, int64, error) {
		runs.Add(1)
		return "partial", 0, boom
	})
	if !errors.Is(err, boom) || out != OutcomeMiss {
		t.Fatalf("Do: v=%q out=%v err=%v", v, out, err)
	}
	if v != "partial" {
		t.Fatalf("partial value not delivered alongside error: %q", v)
	}
	if c.Len() != 0 {
		t.Fatal("errored result was cached")
	}
	if _, _, err := c.Do(context.Background(), "k", func(context.Context) (string, int64, error) {
		runs.Add(1)
		return "v", 10, nil
	}); err != nil {
		t.Fatal(err)
	}
	if runs.Load() != 2 {
		t.Fatalf("compute ran %d times, want 2 (error must not stick)", runs.Load())
	}
}

// TestNoGoroutineLeak drives flights through every exit path — success,
// error, leader handoff, full abandonment — and checks the goroutine
// count returns to baseline.
func TestNoGoroutineLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()
	c := New[string, string](1 << 10)

	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("k%d", i)
		switch i % 4 {
		case 0:
			c.Do(context.Background(), key, computeValue("v", 10))
		case 1:
			c.Do(context.Background(), key, func(context.Context) (string, int64, error) {
				return "", 0, errors.New("x")
			})
		case 2: // leader cancels, waiter finishes
			started := make(chan struct{})
			release := make(chan struct{})
			lctx, lcancel := context.WithCancel(context.Background())
			ldone := make(chan struct{})
			go func() {
				defer close(ldone)
				c.Do(lctx, key, func(context.Context) (string, int64, error) {
					close(started)
					<-release
					return "v", 10, nil
				})
			}()
			<-started
			wdone := make(chan struct{})
			go func() {
				defer close(wdone)
				c.Do(context.Background(), key, computeValue("v", 10))
			}()
			for c.Stats().Collapsed == 0 {
				time.Sleep(time.Millisecond)
			}
			c.ResetStats()
			lcancel()
			<-ldone
			close(release)
			<-wdone
		case 3: // everyone abandons
			started := make(chan struct{})
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan struct{})
			go func() {
				defer close(done)
				c.Do(ctx, key, func(fctx context.Context) (string, int64, error) {
					close(started)
					<-fctx.Done()
					return "", 0, fctx.Err()
				})
			}()
			<-started
			cancel()
			<-done
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
}

// TestConcurrentMixedKeys hammers the cache under -race with a small
// capacity so hits, misses, flights, and evictions all interleave.
func TestConcurrentMixedKeys(t *testing.T) {
	c := New[int, string](250) // holds ~2 of 8 keys
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := (g + i) % 8
				want := fmt.Sprintf("v%d", key)
				v, _, err := c.Do(context.Background(), key, computeValue(want, 100))
				if err != nil {
					t.Errorf("Do(%d): %v", key, err)
					return
				}
				if v != want {
					t.Errorf("Do(%d) = %q, want %q", key, v, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s := c.Stats(); s.ResidentBytes > 250 {
		t.Fatalf("resident bytes %d exceed capacity", s.ResidentBytes)
	}
}
