package bio

import (
	"math"
	"math/rand"
	"testing"
)

func TestAminoAcidFrequencyNormalized(t *testing.T) {
	var sum float64
	for a := AminoAcid(0); a < NumResidues; a++ {
		f := AminoAcidFrequency(a)
		if f <= 0 {
			t.Errorf("frequency of %v must be positive", a)
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("frequencies sum to %g", sum)
	}
	if AminoAcidFrequency(AminoAcid(200)) != 0 {
		t.Error("out of range frequency must be 0")
	}
	// Leucine is the most common residue in the human proteome.
	if AminoAcidFrequency(Leu) < AminoAcidFrequency(Trp) {
		t.Error("Leu should be far more common than Trp")
	}
}

func TestRandomProtSeqNeverStops(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := RandomProtSeq(rng, 10000)
	for i, a := range p {
		if a == Stop {
			t.Fatalf("Stop residue at %d", i)
		}
		if a >= NumAminoAcids {
			t.Fatalf("invalid residue %d at %d", a, i)
		}
	}
}

func TestRandomNucSeqComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := RandomNucSeq(rng, 40000)
	var counts [4]int
	for _, n := range s {
		counts[n]++
	}
	for i, c := range counts {
		frac := float64(c) / float64(len(s))
		if math.Abs(frac-0.25) > 0.02 {
			t.Errorf("base %d frequency %.3f far from uniform", i, frac)
		}
	}
}

func TestSynonymousCodonCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for a := AminoAcid(0); a < NumResidues; a++ {
		for i := 0; i < 50; i++ {
			c := SynonymousCodon(rng, a)
			if c.Translate() != a {
				t.Fatalf("SynonymousCodon(%v) = %v which encodes %v", a, c, c.Translate())
			}
		}
	}
}

func TestSynonymousCodonUsesWeights(t *testing.T) {
	// For Leu, CUG (39.6/1000) should be drawn far more often than CUA (7.2).
	rng := rand.New(rand.NewSource(4))
	counts := map[string]int{}
	for i := 0; i < 20000; i++ {
		counts[SynonymousCodon(rng, Leu).String()]++
	}
	if counts["CUG"] <= counts["CUA"] {
		t.Errorf("CUG=%d should exceed CUA=%d", counts["CUG"], counts["CUA"])
	}
}

func TestEncodeGeneTranslatesBack(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := RandomProtSeq(rng, 200)
	nt := EncodeGene(rng, p)
	if got := nt.Translate(0).String(); got != p.String() {
		t.Errorf("EncodeGene round trip failed:\n got %s\nwant %s", got, p)
	}
}

func TestSyntheticReference(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ref, genes := SyntheticReference(rng, 10000, 5, 100)
	if len(ref) != 10000 {
		t.Fatalf("len = %d", len(ref))
	}
	if len(genes) != 5 {
		t.Fatalf("planted %d genes", len(genes))
	}
	for i, g := range genes {
		if len(g.Protein) != 100 {
			t.Errorf("gene %d protein len %d", i, len(g.Protein))
		}
		// The planted region must translate back to the protein.
		window := ref[g.Pos : g.Pos+3*len(g.Protein)]
		if got := window.Translate(0).String(); got != g.Protein.String() {
			t.Errorf("gene %d does not translate back", i)
		}
		if i > 0 && g.Pos < genes[i-1].Pos+3*100 {
			t.Errorf("genes %d and %d overlap", i-1, i)
		}
	}
}

func TestSyntheticReferenceDegenerateCases(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ref, genes := SyntheticReference(rng, 100, 0, 10)
	if len(ref) != 100 || genes != nil {
		t.Error("zero genes should yield background only")
	}
	// Genes longer than the reference: no planting.
	_, genes = SyntheticReference(rng, 10, 3, 100)
	if genes != nil {
		t.Error("oversized genes should not be planted")
	}
	// Slots smaller than genes: planting count reduced, not failed.
	ref, genes = SyntheticReference(rng, 650, 3, 100)
	if len(ref) != 650 || len(genes) != 2 {
		t.Errorf("expected 2 fitted genes, got %d", len(genes))
	}
}

func TestSyntheticReferenceDeterministic(t *testing.T) {
	a, _ := SyntheticReference(rand.New(rand.NewSource(9)), 500, 2, 20)
	b, _ := SyntheticReference(rand.New(rand.NewSource(9)), 500, 2, 20)
	if a.String() != b.String() {
		t.Error("same seed must give same reference")
	}
}
