package bio

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// FastaRecord is one named sequence from a FASTA stream. Data holds the raw
// residue letters with whitespace removed; interpret it with ParseNucSeq or
// ParseProtSeq depending on the database type.
type FastaRecord struct {
	// ID is the first whitespace-delimited token of the header line.
	ID string
	// Description is the remainder of the header line after ID.
	Description string
	// Data is the concatenated sequence body.
	Data string
}

// Nuc parses the record body as a nucleotide sequence.
func (r *FastaRecord) Nuc() (NucSeq, error) { return ParseNucSeq(r.Data) }

// Prot parses the record body as a protein sequence.
func (r *FastaRecord) Prot() (ProtSeq, error) { return ParseProtSeq(r.Data) }

// FastaReader streams records from FASTA-formatted input.
type FastaReader struct {
	s       *bufio.Scanner
	pending string // header line of the next record, if already consumed
	done    bool
}

// NewFastaReader wraps r in a FASTA record reader. Lines of any length up to
// 16 MiB are accepted.
func NewFastaReader(r io.Reader) *FastaReader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &FastaReader{s: s}
}

// Next returns the next record, or io.EOF when the stream is exhausted.
func (fr *FastaReader) Next() (*FastaRecord, error) {
	header := fr.pending
	fr.pending = ""
	for header == "" {
		if fr.done || !fr.s.Scan() {
			fr.done = true
			if err := fr.s.Err(); err != nil {
				return nil, err
			}
			return nil, io.EOF
		}
		line := strings.TrimSpace(fr.s.Text())
		if line == "" {
			continue
		}
		if !strings.HasPrefix(line, ">") {
			return nil, fmt.Errorf("bio: FASTA input must start with a '>' header, got %q", truncate(line, 40))
		}
		header = line
	}

	rec := &FastaRecord{}
	fields := strings.SplitN(strings.TrimPrefix(header, ">"), " ", 2)
	rec.ID = fields[0]
	if len(fields) == 2 {
		rec.Description = strings.TrimSpace(fields[1])
	}

	var body strings.Builder
	for fr.s.Scan() {
		line := strings.TrimSpace(fr.s.Text())
		if strings.HasPrefix(line, ">") {
			fr.pending = line
			rec.Data = body.String()
			return rec, nil
		}
		body.WriteString(line)
	}
	fr.done = true
	if err := fr.s.Err(); err != nil {
		return nil, err
	}
	rec.Data = body.String()
	return rec, nil
}

// ReadAll drains the reader into a slice of records.
func (fr *FastaReader) ReadAll() ([]*FastaRecord, error) {
	var recs []*FastaRecord
	for {
		r, err := fr.Next()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return nil, err
		}
		recs = append(recs, r)
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// WriteFasta writes one record with the body wrapped at 70 columns.
func WriteFasta(w io.Writer, id, description, data string) error {
	header := ">" + id
	if description != "" {
		header += " " + description
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	const width = 70
	for i := 0; i < len(data); i += width {
		end := i + width
		if end > len(data) {
			end = len(data)
		}
		if _, err := fmt.Fprintln(w, data[i:end]); err != nil {
			return err
		}
	}
	return nil
}
