package bio

// Open-reading-frame discovery: the classic way to locate candidate coding
// regions in an unannotated reference, used by examples and database
// statistics (FabP queries ultimately come from such regions).

// ORF is an open reading frame: AUG..stop on one strand.
type ORF struct {
	// Start is the forward-strand offset of the first base of the start
	// codon; End the offset one past the stop codon's last base (for
	// reverse-strand ORFs these still delimit the forward-strand window).
	Start, End int
	// Reverse marks ORFs read from the reverse-complement strand.
	Reverse bool
	// Protein is the translation, excluding the stop.
	Protein ProtSeq
}

// Length returns the ORF length in residues (stop excluded).
func (o ORF) Length() int { return len(o.Protein) }

// FindORFs returns every ORF of at least minResidues coding residues in
// all six frames, ordered by forward-strand start position. Nested ORFs
// (an AUG inside a longer ORF in the same frame) are suppressed — only the
// longest ORF per stop is reported.
func FindORFs(seq NucSeq, minResidues int) []ORF {
	var out []ORF
	out = append(out, findStrandORFs(seq, minResidues, false, len(seq))...)
	rc := seq.ReverseComplement()
	out = append(out, findStrandORFs(rc, minResidues, true, len(seq))...)
	// Sort by forward start, then strand.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && less(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func less(a, b ORF) bool {
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	return !a.Reverse && b.Reverse
}

// findStrandORFs scans one strand's three frames. refLen maps positions
// back to forward coordinates for the reverse strand.
func findStrandORFs(s NucSeq, minResidues int, reverse bool, refLen int) []ORF {
	var out []ORF
	for frame := 0; frame < 3; frame++ {
		start := -1 // codon index of the current ORF's AUG, -1 when closed
		prot := s.Translate(frame)
		for ci, aa := range prot {
			switch {
			case aa == Stop:
				if start >= 0 && ci-start >= minResidues {
					out = append(out, makeORF(s, frame, start, ci, reverse, refLen, prot))
				}
				start = -1
			case aa == Met && start < 0:
				start = ci
			}
		}
		// ORFs running off the end are not reported (no stop codon).
	}
	return out
}

func makeORF(s NucSeq, frame, startCodon, stopCodon int, reverse bool, refLen int, prot ProtSeq) ORF {
	lo := frame + 3*startCodon
	hi := frame + 3*(stopCodon+1)
	o := ORF{
		Reverse: reverse,
		Protein: append(ProtSeq(nil), prot[startCodon:stopCodon]...),
	}
	if !reverse {
		o.Start, o.End = lo, hi
	} else {
		o.Start, o.End = refLen-hi, refLen-lo
	}
	return o
}
