package bio

import "fmt"

// IUPAC degenerate-base support: the conventional way to write a consensus
// back-translation (Fig. 1's "consensus sequence"). FabP's Type III
// encoding is strictly more precise than an IUPAC consensus — the
// experiments quantify by how much — so the library models both.

// iupacSets maps each IUPAC nucleotide code to its 4-bit acceptance mask
// (bit v set ⇔ nucleotide v accepted; A=bit0, C=1, G=2, U=3).
var iupacSets = map[byte]uint8{
	'A': 1 << A, 'C': 1 << C, 'G': 1 << G, 'U': 1 << U, 'T': 1 << U,
	'R': 1<<A | 1<<G, // purine
	'Y': 1<<C | 1<<U, // pyrimidine
	'S': 1<<C | 1<<G,
	'W': 1<<A | 1<<U,
	'K': 1<<G | 1<<U,
	'M': 1<<A | 1<<C,
	'B': 1<<C | 1<<G | 1<<U, // not A
	'D': 1<<A | 1<<G | 1<<U, // not C
	'H': 1<<A | 1<<C | 1<<U, // not G
	'V': 1<<A | 1<<C | 1<<G, // not U
	'N': 1<<A | 1<<C | 1<<G | 1<<U,
}

// IUPACAccepts reports whether IUPAC code accepts nucleotide n. Unknown
// codes accept nothing.
func IUPACAccepts(code byte, n Nucleotide) bool {
	if n > U {
		return false
	}
	return iupacSets[code]>>n&1 == 1
}

// IUPACSetSize returns how many nucleotides the code accepts (0 for
// unknown codes).
func IUPACSetSize(code byte) int {
	m := iupacSets[code]
	n := 0
	for m != 0 {
		n += int(m & 1)
		m >>= 1
	}
	return n
}

// ParseNucSeqIUPAC parses a nucleotide string that may contain IUPAC
// ambiguity codes (N, R, Y, ...), as real NCBI nt data does. Each
// ambiguous position resolves deterministically to one member of its set
// (chosen by a position hash, so composition stays unbiased and results
// reproduce). It returns the sequence and the count of ambiguous
// positions resolved; the caller decides whether that count is acceptable.
func ParseNucSeqIUPAC(s string) (NucSeq, int, error) {
	seq := make(NucSeq, 0, len(s))
	ambiguous := 0
	pos := 0
	for i := 0; i < len(s); i++ {
		b := s[i]
		if b == ' ' || b == '\t' || b == '\n' || b == '\r' {
			continue
		}
		if n, err := ParseNucleotide(b); err == nil {
			seq = append(seq, n)
			pos++
			continue
		}
		upper := b &^ 0x20
		mask := iupacSets[upper]
		if mask == 0 {
			return nil, 0, fmt.Errorf("bio: position %d: invalid nucleotide letter %q", pos, b)
		}
		// Deterministic member selection: hash the position into the set.
		members := make([]Nucleotide, 0, 4)
		for v := Nucleotide(0); v < 4; v++ {
			if mask>>v&1 == 1 {
				members = append(members, v)
			}
		}
		h := uint32(pos)*2654435761 + uint32(upper)
		seq = append(seq, members[int(h>>16)%len(members)])
		ambiguous++
		pos++
	}
	return seq, ambiguous, nil
}

// IUPACMatchesSeq reports whether every position of the IUPAC pattern
// accepts the corresponding nucleotide of s (lengths must match).
func IUPACMatchesSeq(pattern string, s NucSeq) bool {
	if len(pattern) != len(s) {
		return false
	}
	for i := 0; i < len(pattern); i++ {
		if !IUPACAccepts(pattern[i], s[i]) {
			return false
		}
	}
	return true
}
