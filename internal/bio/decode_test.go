package bio

import (
	"math/rand"
	"strings"
	"testing"
)

// TestAppendNucASCIIMatchesPerLetterParse proves the table decoder is the
// per-letter parser: every byte value either decodes identically or fails
// in both (whitespace excepted — the decoder skips it, the letter parser
// rejects it).
func TestAppendNucASCIIMatchesPerLetterParse(t *testing.T) {
	for b := 0; b < 256; b++ {
		in := []byte{byte(b)}
		got, idx, err := AppendNucASCII(nil, in)
		want, perr := ParseNucleotide(byte(b))
		switch byte(b) {
		case ' ', '\t', '\n', '\r':
			if err != nil || len(got) != 0 {
				t.Fatalf("byte %q: whitespace not skipped (got %v, err %v)", b, got, err)
			}
		default:
			if perr == nil {
				if err != nil || len(got) != 1 || got[0] != want {
					t.Fatalf("byte %q: got %v/%v, want [%v]", b, got, err, want)
				}
			} else {
				if err == nil || idx != 0 {
					t.Fatalf("byte %q: expected decode error at 0, got idx %d err %v", b, idx, err)
				}
				if err.Error() != perr.Error() {
					t.Fatalf("byte %q: error %q, want %q", b, err, perr)
				}
			}
		}
	}
}

func TestAppendNucASCIISequences(t *testing.T) {
	got, idx, err := AppendNucASCII(nil, "AC\n gu\tT")
	if err != nil || idx != 8 {
		t.Fatalf("idx %d err %v", idx, err)
	}
	if got.String() != "ACGUU" {
		t.Fatalf("decoded %q, want ACGUU", got.String())
	}

	// An invalid byte stops the decode with the valid prefix and its index.
	got, idx, err = AppendNucASCII(got[:0], []byte("ACGX TT"))
	if err == nil || idx != 3 {
		t.Fatalf("expected error at index 3, got idx %d err %v", idx, err)
	}
	if got.String() != "ACG" {
		t.Fatalf("prefix %q, want ACG", got.String())
	}

	// Appending extends, never restarts.
	got, _, err = AppendNucASCII(NucSeq{A, C}, "gu")
	if err != nil || got.String() != "ACGU" {
		t.Fatalf("append got %q err %v", got.String(), err)
	}
}

// TestParseNucSeqErrorPositionIsByteIndex pins the historical contract:
// the position in ParseNucSeq's error is the byte index in the input
// string, whitespace included.
func TestParseNucSeqErrorPositionIsByteIndex(t *testing.T) {
	_, err := ParseNucSeq("AC GX")
	if err == nil || !strings.Contains(err.Error(), "position 4") {
		t.Fatalf("err %v, want position 4", err)
	}
}

// randomLetters builds a decoder workload: base letters of both cases with
// whitespace sprinkled in, the shape of real FASTA payload lines.
func randomLetters(rng *rand.Rand, n int) []byte {
	const letters = "ACGUTacgut"
	out := make([]byte, 0, n+n/60)
	for i := 0; i < n; i++ {
		out = append(out, letters[rng.Intn(len(letters))])
		if i%60 == 59 {
			out = append(out, '\n')
		}
	}
	return out
}

func BenchmarkAppendNucASCII(b *testing.B) {
	src := randomLetters(rand.New(rand.NewSource(1)), 1<<16)
	dst := make(NucSeq, 0, 1<<16)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, _, err = AppendNucASCII(dst[:0], src)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParseNucleotideLoop is the pre-table baseline shape: one call
// per letter with a separate whitespace check, the loop AppendNucASCII
// replaced.
func BenchmarkParseNucleotideLoop(b *testing.B) {
	src := randomLetters(rand.New(rand.NewSource(1)), 1<<16)
	dst := make(NucSeq, 0, 1<<16)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = dst[:0]
		for _, c := range src {
			switch c {
			case ' ', '\t', '\n', '\r':
				continue
			}
			nt, err := ParseNucleotide(c)
			if err != nil {
				b.Fatal(err)
			}
			dst = append(dst, nt)
		}
	}
}
