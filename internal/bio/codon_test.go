package bio

import (
	"testing"
	"testing/quick"
)

func TestCodonIndexRoundTrip(t *testing.T) {
	for i := 0; i < NumCodons; i++ {
		if got := CodonFromIndex(i).Index(); got != i {
			t.Errorf("CodonFromIndex(%d).Index() = %d", i, got)
		}
	}
}

func TestGeneticCodeSpotChecks(t *testing.T) {
	cases := map[string]AminoAcid{
		"AUG": Met, "UGG": Trp, "UUU": Phe, "UUC": Phe,
		"UUA": Leu, "UUG": Leu, "CUU": Leu, "CUC": Leu, "CUA": Leu, "CUG": Leu,
		"UAA": Stop, "UAG": Stop, "UGA": Stop,
		"GGG": Gly, "AAA": Lys, "CAU": His, "AGU": Ser, "UCA": Ser,
		"CGA": Arg, "AGA": Arg, "AUA": Ile, "GUG": Val, "GCC": Ala,
		"GAU": Asp, "GAA": Glu, "AAU": Asn, "CAA": Gln, "UGU": Cys,
		"UAU": Tyr, "CCC": Pro, "ACU": Thr,
	}
	for s, want := range cases {
		c, err := ParseCodon(s)
		if err != nil {
			t.Fatalf("ParseCodon(%s): %v", s, err)
		}
		if got := c.Translate(); got != want {
			t.Errorf("Translate(%s) = %v, want %v", s, got, want)
		}
	}
}

func TestDegeneracyCounts(t *testing.T) {
	counts := map[AminoAcid]int{
		Ala: 4, Cys: 2, Asp: 2, Glu: 2, Phe: 2, Gly: 4, His: 2, Ile: 3,
		Lys: 2, Leu: 6, Met: 1, Asn: 2, Pro: 4, Gln: 2, Arg: 6, Ser: 6,
		Thr: 4, Val: 4, Trp: 1, Tyr: 2, Stop: 3,
	}
	total := 0
	for a, n := range counts {
		if got := a.Degeneracy(); got != n {
			t.Errorf("Degeneracy(%v) = %d, want %d", a, got, n)
		}
		total += n
	}
	if total != NumCodons {
		t.Errorf("degeneracies sum to %d, want 64", total)
	}
}

func TestCodonsTranslateBack(t *testing.T) {
	// Every codon listed for amino acid a must translate to a.
	for a := AminoAcid(0); a < NumResidues; a++ {
		for _, c := range a.Codons() {
			if c.Translate() != a {
				t.Errorf("codon %v listed for %v translates to %v", c, a, c.Translate())
			}
		}
	}
}

func TestCodonsPartitionCodonSpace(t *testing.T) {
	seen := map[int]bool{}
	for a := AminoAcid(0); a < NumResidues; a++ {
		for _, c := range a.Codons() {
			if seen[c.Index()] {
				t.Errorf("codon %v appears twice", c)
			}
			seen[c.Index()] = true
		}
	}
	if len(seen) != NumCodons {
		t.Errorf("codon lists cover %d codons, want 64", len(seen))
	}
}

func TestParseCodonErrors(t *testing.T) {
	for _, bad := range []string{"", "AU", "AUGC", "AXG"} {
		if _, err := ParseCodon(bad); err == nil {
			t.Errorf("ParseCodon(%q) should fail", bad)
		}
	}
}

func TestCodonStringRoundTrip(t *testing.T) {
	f := func(i uint8) bool {
		c := CodonFromIndex(int(i) % NumCodons)
		parsed, err := ParseCodon(c.String())
		return err == nil && parsed == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStartCodon(t *testing.T) {
	if StartCodon.Translate() != Met {
		t.Error("start codon must encode Met")
	}
	if StartCodon.String() != "AUG" {
		t.Errorf("StartCodon = %s", StartCodon)
	}
}
