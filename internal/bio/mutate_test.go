package bio

import (
	"math"
	"math/rand"
	"testing"
)

func TestMutateSubstitutionsOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := MutationModel{SubstitutionRate: 0.1, IndelRatePerKB: 0}
	p := RandomProtSeq(rng, 5000)
	out, stats := m.Mutate(rng, p)
	if len(out) != len(p) {
		t.Fatalf("length changed without indels: %d -> %d", len(p), len(out))
	}
	if stats.HasIndel() || stats.Insertions != 0 || stats.Deletions != 0 {
		t.Error("no indels expected")
	}
	diff := 0
	for i := range p {
		if p[i] != out[i] {
			diff++
		}
	}
	if diff != stats.Substitutions {
		t.Errorf("observed %d diffs, stats say %d", diff, stats.Substitutions)
	}
	frac := float64(diff) / float64(len(p))
	if math.Abs(frac-0.1) > 0.02 {
		t.Errorf("substitution fraction %.3f far from 0.1", frac)
	}
}

func TestMutateDoesNotAliasInput(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := MutationModel{SubstitutionRate: 1.0}
	p := RandomProtSeq(rng, 100)
	orig := p.String()
	m.Mutate(rng, p)
	if p.String() != orig {
		t.Error("input was modified")
	}
}

func TestMutateIndelIncidenceMatchesPaper(t *testing.T) {
	// The paper observes ~0.02% of 10,000 sampled queries containing indels
	// under the [18] distribution with short queries; with 250-residue
	// queries and 0.09 events/kb, P(>=1 event) ≈ 1-exp(-0.0675) ≈ 6.5%.
	// Check the model produces the analytic Poisson incidence.
	rng := rand.New(rand.NewSource(3))
	m := DefaultMutationModel()
	const trials = 5000
	const resLen = 250
	lambda := m.IndelRatePerKB * 3 * resLen / 1000
	wantP := 1 - math.Exp(-lambda)
	hit := 0
	for i := 0; i < trials; i++ {
		p := RandomProtSeq(rng, resLen)
		_, stats := m.Mutate(rng, p)
		if stats.HasIndel() {
			hit++
		}
	}
	gotP := float64(hit) / trials
	if math.Abs(gotP-wantP) > 0.02 {
		t.Errorf("indel incidence %.4f, want ≈%.4f", gotP, wantP)
	}
}

func TestMutateIndelsChangeLength(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := MutationModel{SubstitutionRate: 0, IndelRatePerKB: 1000, MaxIndelLen: 2}
	p := RandomProtSeq(rng, 100)
	sawChange := false
	for i := 0; i < 20; i++ {
		out, stats := m.Mutate(rng, p)
		if want := len(p) + stats.Insertions - stats.Deletions; len(out) != want {
			t.Fatalf("len %d, stats imply %d", len(out), want)
		}
		if stats.IndelEvents > 0 {
			sawChange = true
		}
	}
	if !sawChange {
		t.Error("high indel rate produced no events")
	}
}

func TestMutateNucSubstitutions(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := RandomNucSeq(rng, 10000)
	out := MutateNucSubstitutions(rng, s, 0.2)
	if len(out) != len(s) {
		t.Fatal("length changed")
	}
	diff := 0
	for i := range s {
		if s[i] != out[i] {
			diff++
		}
	}
	frac := float64(diff) / float64(len(s))
	if math.Abs(frac-0.2) > 0.02 {
		t.Errorf("fraction %.3f far from 0.2", frac)
	}
	// Rate 0 must be an exact copy that doesn't alias.
	same := MutateNucSubstitutions(rng, s, 0)
	same[0] = same[0] ^ 1
	if s[0] == same[0] {
		t.Error("output aliases input")
	}
}

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const lambda = 0.5
	var sum int
	const n = 20000
	for i := 0; i < n; i++ {
		sum += poisson(rng, lambda)
	}
	mean := float64(sum) / n
	if math.Abs(mean-lambda) > 0.03 {
		t.Errorf("poisson mean %.3f, want %.3f", mean, lambda)
	}
	if poisson(rng, 0) != 0 || poisson(rng, -1) != 0 {
		t.Error("non-positive lambda must give 0")
	}
}
