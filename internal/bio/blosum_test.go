package bio

import "testing"

func TestBlosum62Symmetric(t *testing.T) {
	for a := AminoAcid(0); a < NumResidues; a++ {
		for b := AminoAcid(0); b < NumResidues; b++ {
			if Blosum62(a, b) != Blosum62(b, a) {
				t.Errorf("asymmetric at %v,%v", a, b)
			}
		}
	}
}

func TestBlosum62SpotValues(t *testing.T) {
	cases := []struct {
		a, b AminoAcid
		want int
	}{
		{Ala, Ala, 4}, {Trp, Trp, 11}, {Cys, Cys, 9},
		{Leu, Ile, 2}, {Lys, Arg, 2}, {Phe, Tyr, 3},
		{Trp, Gly, -2}, {Pro, Trp, -4}, {Asp, Glu, 2},
		{Met, Leu, 2}, {His, Tyr, 2}, {Gly, Gly, 6},
		{Stop, Ala, -4}, {Stop, Stop, 1},
	}
	for _, tc := range cases {
		if got := Blosum62(tc.a, tc.b); got != tc.want {
			t.Errorf("Blosum62(%v,%v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestBlosum62DiagonalDominance(t *testing.T) {
	// Self-score must be the row maximum for every coding residue.
	for a := AminoAcid(0); a < NumAminoAcids; a++ {
		self := Blosum62(a, a)
		for b := AminoAcid(0); b < NumAminoAcids; b++ {
			if b != a && Blosum62(a, b) > self {
				t.Errorf("Blosum62(%v,%v)=%d exceeds self %d", a, b, Blosum62(a, b), self)
			}
		}
	}
}

func TestBlosum62Row(t *testing.T) {
	row := Blosum62Row(Ala)
	if int(row[Ala]) != 4 || int(row[Trp]) != -3 {
		t.Errorf("row = %v", row)
	}
	// Mutating the copy must not affect the matrix.
	row[Ala] = 99
	if Blosum62(Ala, Ala) != 4 {
		t.Error("Blosum62Row returned shared storage")
	}
}
