package bio

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestParseNucSeq(t *testing.T) {
	s, err := ParseNucSeq("ACGU acgt\nACGT")
	if err != nil {
		t.Fatal(err)
	}
	want := NucSeq{A, C, G, U, A, C, G, U, A, C, G, U}
	if !reflect.DeepEqual(s, want) {
		t.Errorf("got %v want %v", s, want)
	}
	if _, err := ParseNucSeq("ACGX"); err == nil {
		t.Error("expected error for X")
	}
}

func TestNucSeqStrings(t *testing.T) {
	s := NucSeq{A, C, G, U}
	if s.String() != "ACGU" {
		t.Errorf("String = %q", s.String())
	}
	if s.DNAString() != "ACGT" {
		t.Errorf("DNAString = %q", s.DNAString())
	}
}

func TestReverseComplement(t *testing.T) {
	s, _ := ParseNucSeq("AACGU")
	rc := s.ReverseComplement()
	if rc.String() != "ACGUU" {
		t.Errorf("rc = %s", rc)
	}
	// Involution property.
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := RandomNucSeq(rng, int(n))
		return reflect.DeepEqual(s.ReverseComplement().ReverseComplement(), s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTranslateFrames(t *testing.T) {
	s, _ := ParseNucSeq("AUGUUUUAA") // Met Phe Stop
	if got := s.Translate(0).String(); got != "MF*" {
		t.Errorf("frame 0 = %q", got)
	}
	// Frame 1: UGU UUU (AA dropped) = Cys Phe
	if got := s.Translate(1).String(); got != "CF" {
		t.Errorf("frame 1 = %q", got)
	}
	// Frame 2: GUU UUA = Val Leu
	if got := s.Translate(2).String(); got != "VL" {
		t.Errorf("frame 2 = %q", got)
	}
	if s.Translate(3) != nil || s.Translate(-1) != nil {
		t.Error("invalid frames must return nil")
	}
	short := NucSeq{A, U}
	if short.Translate(0) != nil {
		t.Error("too-short sequence must return nil")
	}
}

func TestCodonsSplit(t *testing.T) {
	s, _ := ParseNucSeq("AUGUUUGG") // trailing GG dropped
	cs := s.Codons()
	if len(cs) != 2 || cs[0].String() != "AUG" || cs[1].String() != "UUU" {
		t.Errorf("Codons = %v", cs)
	}
}

func TestProtSeqParseAndString(t *testing.T) {
	p, err := ParseProtSeq("MF*ky")
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "MF*KY" {
		t.Errorf("got %q", p.String())
	}
	if _, err := ParseProtSeq("MXZ"); err == nil {
		t.Error("expected error")
	}
}

func TestBackTranslateArbitraryRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := RandomProtSeq(rng, 1+int(n%64))
		nt := p.BackTranslateArbitrary()
		return nt.Translate(0).String() == p.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		s := RandomNucSeq(rng, int(n%500))
		return reflect.DeepEqual(Pack(s).Unpack(), s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPackedAtSetSlice(t *testing.T) {
	p := NewPackedNucSeq(100)
	if p.Len() != 100 {
		t.Fatalf("Len = %d", p.Len())
	}
	for i := 0; i < 100; i++ {
		p.Set(i, Nucleotide(i%4))
	}
	for i := 0; i < 100; i++ {
		if p.At(i) != Nucleotide(i%4) {
			t.Fatalf("At(%d) = %v", i, p.At(i))
		}
	}
	// Overwrite must clear old bits.
	p.Set(7, U)
	p.Set(7, A)
	if p.At(7) != A {
		t.Errorf("Set overwrite failed: %v", p.At(7))
	}
	sl := p.Slice(96, 200)
	if len(sl) != 4 {
		t.Errorf("Slice clipped len = %d", len(sl))
	}
	if p.Slice(10, 10) != nil || p.Slice(-5, 0) != nil {
		t.Error("empty slices must be nil")
	}
}

func TestPackedWordLayout(t *testing.T) {
	// Element i occupies bits [2i, 2i+1] of word i/32 — the FPGA DRAM layout.
	s := make(NucSeq, 33)
	s[0] = U  // word0 bits 0..1 = 11
	s[1] = G  // word0 bits 2..3 = 10
	s[32] = C // word1 bits 0..1 = 01
	p := Pack(s)
	if got := p.Words()[0] & 0xF; got != 0xB { // 10_11
		t.Errorf("word0 low nibble = %#x, want 0xb", got)
	}
	if got := p.Words()[1] & 0x3; got != 0x1 {
		t.Errorf("word1 low bits = %#x, want 0x1", got)
	}
}

func TestPackedBytes(t *testing.T) {
	s := NucSeq{U} // word = 0x3
	b := Pack(s).Bytes()
	if len(b) != 8 || b[0] != 3 {
		t.Errorf("Bytes = %v", b)
	}
}
