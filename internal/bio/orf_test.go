package bio

import (
	"math/rand"
	"testing"
)

func TestFindORFsSimple(t *testing.T) {
	// AUG AAA UGG UAA = Met Lys Trp Stop, planted at offset 5.
	s, _ := ParseNucSeq("CCCCC" + "AUGAAAUGGUAA" + "CCCCC")
	orfs := FindORFs(s, 1)
	var hit *ORF
	for i := range orfs {
		if !orfs[i].Reverse && orfs[i].Start == 5 {
			hit = &orfs[i]
		}
	}
	if hit == nil {
		t.Fatalf("ORF at 5 not found: %+v", orfs)
	}
	if hit.End != 17 || hit.Protein.String() != "MKW" || hit.Length() != 3 {
		t.Errorf("ORF wrong: %+v", *hit)
	}
}

func TestFindORFsReverseStrand(t *testing.T) {
	// Plant MKW on the reverse strand: forward sequence holds the reverse
	// complement of AUGAAAUGGUAA.
	gene, _ := ParseNucSeq("AUGAAAUGGUAA")
	rc := gene.ReverseComplement()
	s := append(append(NucSeq{}, rc...), A, A, A, A)
	orfs := FindORFs(s, 1)
	found := false
	for _, o := range orfs {
		if o.Reverse && o.Protein.String() == "MKW" {
			found = true
			if o.Start != 0 || o.End != 12 {
				t.Errorf("reverse ORF coords: %+v", o)
			}
		}
	}
	if !found {
		t.Fatalf("reverse ORF missing: %+v", orfs)
	}
}

func TestFindORFsMinLength(t *testing.T) {
	s, _ := ParseNucSeq("AUGAAAUGGUAA") // 3-residue ORF
	if len(FindORFs(s, 4)) != 0 {
		t.Error("minResidues filter failed")
	}
	if len(FindORFs(s, 3)) == 0 {
		t.Error("3-residue ORF should pass minResidues=3")
	}
}

func TestFindORFsNoStopNoORF(t *testing.T) {
	s, _ := ParseNucSeq("AUGAAAAAAAAA") // start, never stops
	for _, o := range FindORFs(s, 1) {
		if !o.Reverse && o.Start == 0 {
			t.Error("unterminated ORF must not be reported")
		}
	}
}

func TestFindORFsNestedSuppressed(t *testing.T) {
	// AUG xxx AUG xxx UAA: only the outer ORF (from the first AUG) counts.
	s, _ := ParseNucSeq("AUG" + "AAA" + "AUG" + "AAA" + "UAA")
	count := 0
	for _, o := range FindORFs(s, 1) {
		if !o.Reverse && o.End == 15 {
			count++
			if o.Start != 0 {
				t.Errorf("outer ORF should start at 0, got %d", o.Start)
			}
		}
	}
	if count != 1 {
		t.Errorf("expected exactly 1 ORF per stop, got %d", count)
	}
}

// TestFindORFsPlantedGenes: genes planted by the generator terminate with
// a manually-added stop and must be recovered.
func TestFindORFsPlantedGenes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	prot := append(ProtSeq{Met}, RandomProtSeq(rng, 30)...)
	gene := EncodeGene(rng, append(prot, Stop))
	ref := RandomNucSeq(rng, 3000)
	pos := 900
	copy(ref[pos:], gene)
	orfs := FindORFs(ref, 25)
	found := false
	for _, o := range orfs {
		if !o.Reverse && o.Start == pos && o.Protein.String() == prot.String() {
			found = true
		}
	}
	if !found {
		t.Errorf("planted ORF at %d not recovered (have %d ORFs)", pos, len(orfs))
	}
}

func TestFindORFsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ref := RandomNucSeq(rng, 5000)
	orfs := FindORFs(ref, 5)
	for i := 1; i < len(orfs); i++ {
		if orfs[i].Start < orfs[i-1].Start {
			t.Fatal("ORFs not sorted")
		}
	}
}
