package bio

import "fmt"

// Codon is a triplet of nucleotides, the unit of the genetic code.
type Codon [3]Nucleotide

// NumCodons is the number of distinct codons (4^3).
const NumCodons = 64

// CodonFromIndex reconstructs a codon from its dense index (see Index).
func CodonFromIndex(i int) Codon {
	return Codon{Nucleotide(i>>4) & 3, Nucleotide(i>>2) & 3, Nucleotide(i) & 3}
}

// Index returns the dense codon index in [0,64): first position is the most
// significant base pair.
func (c Codon) Index() int {
	return int(c[0])<<4 | int(c[1])<<2 | int(c[2])
}

// String renders the codon as three RNA letters.
func (c Codon) String() string {
	return string([]byte{c[0].Letter(), c[1].Letter(), c[2].Letter()})
}

// ParseCodon parses a three-letter codon string (DNA or RNA letters).
func ParseCodon(s string) (Codon, error) {
	if len(s) != 3 {
		return Codon{}, fmt.Errorf("bio: codon %q must have exactly 3 letters", s)
	}
	var c Codon
	for i := 0; i < 3; i++ {
		n, err := ParseNucleotide(s[i])
		if err != nil {
			return Codon{}, err
		}
		c[i] = n
	}
	return c, nil
}

// geneticCode maps the dense codon index to the encoded amino acid. The
// string is laid out in codon-index order (AAA, AAC, AAG, AAU, ACA, ...,
// UUU) and spells the standard genetic code (NCBI translation table 1).
const geneticCode = "KNKN" + "TTTT" + "RSRS" + "IIMI" + // AAx ACx AGx AUx
	"QHQH" + "PPPP" + "RRRR" + "LLLL" + // CAx CCx CGx CUx
	"EDED" + "AAAA" + "GGGG" + "VVVV" + // GAx GCx GGx GUx
	"*Y*Y" + "SSSS" + "*CWC" + "LFLF" //   UAx UCx UGx UUx

// codonToAA and aaToCodons are derived from geneticCode at init.
var (
	codonToAA [NumCodons]AminoAcid
	aaToCodon [NumResidues][]Codon
)

func init() {
	if len(geneticCode) != NumCodons {
		panic("bio: genetic code table must have 64 entries")
	}
	for i := 0; i < NumCodons; i++ {
		aa, err := ParseAminoAcid(geneticCode[i])
		if err != nil {
			panic(err)
		}
		codonToAA[i] = aa
		aaToCodon[aa] = append(aaToCodon[aa], CodonFromIndex(i))
	}
}

// Translate returns the amino acid encoded by c under the standard genetic
// code.
func (c Codon) Translate() AminoAcid { return codonToAA[c.Index()] }

// Codons returns every codon that translates to a, in codon-index order.
// The returned slice is shared; callers must not modify it.
func (a AminoAcid) Codons() []Codon {
	if a >= NumResidues {
		return nil
	}
	return aaToCodon[a]
}

// Degeneracy returns how many codons encode a (1 for Met/Trp, up to 6 for
// Leu/Ser/Arg).
func (a AminoAcid) Degeneracy() int { return len(a.Codons()) }

// StartCodon is AUG, the canonical translation start.
var StartCodon = Codon{A, U, G}
