package bio

import "fmt"

// Table-driven ASCII→nucleotide decoding. One 256-entry table classifies
// every byte in a single load — the 2-bit code for a base letter, a
// whitespace marker, or an invalid marker — replacing the per-letter
// switch on the streaming and database-build hot paths.
const (
	nucSpace   = 0xFE // whitespace: skipped by the sequence decoders
	nucInvalid = 0xFF // anything that is neither a base letter nor whitespace
)

// nucCodes maps ASCII bytes to 2-bit nucleotide codes (A=00, C=01, G=10,
// U/T=11, either case), nucSpace for whitespace, nucInvalid otherwise.
var nucCodes [256]uint8

func init() {
	for i := range nucCodes {
		nucCodes[i] = nucInvalid
	}
	for _, e := range []struct {
		letters string
		code    Nucleotide
	}{
		{"Aa", A}, {"Cc", C}, {"Gg", G}, {"UuTt", U},
	} {
		for i := 0; i < len(e.letters); i++ {
			nucCodes[e.letters[i]] = uint8(e.code)
		}
	}
	for _, ws := range []byte{' ', '\t', '\n', '\r'} {
		nucCodes[ws] = nucSpace
	}
}

// AppendNucASCII decodes the ASCII base letters in src (DNA or RNA, either
// case, whitespace skipped) and appends them to dst. On an invalid byte it
// returns dst extended with everything decoded before it, the byte's index
// in src, and an error; otherwise the index is len(src) and the error nil.
// The shared decode step of the chunked stream scan and the database
// builder.
func AppendNucASCII[S ~[]byte | ~string](dst NucSeq, src S) (NucSeq, int, error) {
	for i := 0; i < len(src); i++ {
		c := nucCodes[src[i]]
		if c < NumNucleotides {
			dst = append(dst, Nucleotide(c))
			continue
		}
		if c == nucSpace {
			continue
		}
		return dst, i, fmt.Errorf("bio: invalid nucleotide letter %q", src[i])
	}
	return dst, len(src), nil
}
