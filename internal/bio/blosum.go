package bio

// blosum62Raw is the standard BLOSUM62 substitution matrix in the canonical
// NCBI row/column order A R N D C Q E G H I L K M F P S T W Y V.
var blosum62Raw = [20][20]int8{
	{4, -1, -2, -2, 0, -1, -1, 0, -2, -1, -1, -1, -1, -2, -1, 1, 0, -3, -2, 0},
	{-1, 5, 0, -2, -3, 1, 0, -2, 0, -3, -2, 2, -1, -3, -2, -1, -1, -3, -2, -3},
	{-2, 0, 6, 1, -3, 0, 0, 0, 1, -3, -3, 0, -2, -3, -2, 1, 0, -4, -2, -3},
	{-2, -2, 1, 6, -3, 0, 2, -1, -1, -3, -4, -1, -3, -3, -1, 0, -1, -4, -3, -3},
	{0, -3, -3, -3, 9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1},
	{-1, 1, 0, 0, -3, 5, 2, -2, 0, -3, -2, 1, 0, -3, -1, 0, -1, -2, -1, -2},
	{-1, 0, 0, 2, -4, 2, 5, -2, 0, -3, -3, 1, -2, -3, -1, 0, -1, -3, -2, -2},
	{0, -2, 0, -1, -3, -2, -2, 6, -2, -4, -4, -2, -3, -3, -2, 0, -2, -2, -3, -3},
	{-2, 0, 1, -1, -3, 0, 0, -2, 8, -3, -3, -1, -2, -1, -2, -1, -2, -2, 2, -3},
	{-1, -3, -3, -3, -1, -3, -3, -4, -3, 4, 2, -3, 1, 0, -3, -2, -1, -3, -1, 3},
	{-1, -2, -3, -4, -1, -2, -3, -4, -3, 2, 4, -2, 2, 0, -3, -2, -1, -2, -1, 1},
	{-1, 2, 0, -1, -3, 1, 1, -2, -1, -3, -2, 5, -1, -3, -1, 0, -1, -3, -2, -2},
	{-1, -1, -2, -3, -1, 0, -2, -3, -2, 1, 2, -1, 5, 0, -2, -1, -1, -1, -1, 1},
	{-2, -3, -3, -3, -2, -3, -3, -3, -1, 0, 0, -3, 0, 6, -4, -2, -2, 1, 3, -1},
	{-1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4, 7, -1, -1, -4, -3, -2},
	{1, -1, 1, 0, -1, 0, 0, 0, -1, -2, -2, 0, -1, -2, -1, 4, 1, -3, -2, -2},
	{0, -1, 0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1, 1, 5, -2, -2, 0},
	{-3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1, 1, -4, -3, -2, 11, 2, -3},
	{-2, -2, -2, -3, -2, -1, -2, -3, 2, -1, -1, -2, -1, 3, -3, -2, -2, 2, 7, -2},
	{0, -3, -3, -3, -1, -2, -2, -3, -3, 3, 1, -2, 1, -1, -2, -2, 0, -3, -2, 4},
}

// ncbiOrder lists the amino acids in BLOSUM row order.
var ncbiOrder = [20]AminoAcid{
	Ala, Arg, Asn, Asp, Cys, Gln, Glu, Gly, His, Ile,
	Leu, Lys, Met, Phe, Pro, Ser, Thr, Trp, Tyr, Val,
}

// blosum62 is the matrix re-indexed by our dense AminoAcid values, including
// Stop rows/columns (BLAST convention: any pairing with Stop scores -4,
// Stop:Stop scores +1).
var blosum62 [NumResidues][NumResidues]int8

func init() {
	for i := range blosum62 {
		for j := range blosum62[i] {
			blosum62[i][j] = -4
		}
	}
	blosum62[Stop][Stop] = 1
	for i, ai := range ncbiOrder {
		for j, aj := range ncbiOrder {
			blosum62[ai][aj] = blosum62Raw[i][j]
		}
	}
}

// Blosum62 returns the BLOSUM62 substitution score for residues a and b.
func Blosum62(a, b AminoAcid) int {
	return int(blosum62[a][b])
}

// Blosum62Row returns the full substitution row for residue a, indexed by
// AminoAcid. The returned array is a copy.
func Blosum62Row(a AminoAcid) [NumResidues]int8 {
	return blosum62[a]
}
