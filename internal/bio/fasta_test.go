package bio

import (
	"io"
	"strings"
	"testing"
)

func TestFastaReaderBasic(t *testing.T) {
	in := `>seq1 first sequence
ACGT
ACGU

>seq2
MFKY
>seq3 trailing
`
	fr := NewFastaReader(strings.NewReader(in))
	recs, err := fr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].ID != "seq1" || recs[0].Description != "first sequence" {
		t.Errorf("rec0 header = %q %q", recs[0].ID, recs[0].Description)
	}
	if recs[0].Data != "ACGTACGU" {
		t.Errorf("rec0 data = %q", recs[0].Data)
	}
	if recs[1].ID != "seq2" || recs[1].Data != "MFKY" {
		t.Errorf("rec1 = %+v", recs[1])
	}
	if recs[2].Data != "" {
		t.Errorf("rec2 data = %q", recs[2].Data)
	}
}

func TestFastaReaderTyped(t *testing.T) {
	fr := NewFastaReader(strings.NewReader(">n\nACGT\n>p\nMF*\n"))
	r1, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	nuc, err := r1.Nuc()
	if err != nil || nuc.String() != "ACGU" {
		t.Errorf("Nuc = %v, %v", nuc, err)
	}
	r2, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	prot, err := r2.Prot()
	if err != nil || prot.String() != "MF*" {
		t.Errorf("Prot = %v, %v", prot, err)
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Errorf("want EOF, got %v", err)
	}
}

func TestFastaReaderErrors(t *testing.T) {
	fr := NewFastaReader(strings.NewReader("ACGT\n"))
	if _, err := fr.Next(); err == nil {
		t.Error("missing header should fail")
	}
	fr = NewFastaReader(strings.NewReader(""))
	if _, err := fr.Next(); err != io.EOF {
		t.Errorf("empty input: want EOF, got %v", err)
	}
}

func TestWriteFastaRoundTrip(t *testing.T) {
	var sb strings.Builder
	data := strings.Repeat("ACGU", 50) // 200 chars, forces wrapping
	if err := WriteFasta(&sb, "id1", "desc here", data); err != nil {
		t.Fatal(err)
	}
	for i, line := range strings.Split(strings.TrimSpace(sb.String()), "\n") {
		if i > 0 && len(line) > 70 {
			t.Errorf("line %d exceeds 70 cols: %d", i, len(line))
		}
	}
	fr := NewFastaReader(strings.NewReader(sb.String()))
	rec, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.ID != "id1" || rec.Description != "desc here" || rec.Data != data {
		t.Errorf("round trip mismatch: %+v", rec)
	}
}

func TestWriteFastaNoDescription(t *testing.T) {
	var sb strings.Builder
	if err := WriteFasta(&sb, "x", "", "AC"); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), ">x\n") {
		t.Errorf("header = %q", sb.String())
	}
}
