package bio

import (
	"math"
	"math/rand"
	"testing"
)

func TestUsageTablesComplete(t *testing.T) {
	for _, u := range Usages() {
		var sum float64
		for a := AminoAcid(0); a < NumResidues; a++ {
			f := u.AminoAcidFrequency(a)
			if f <= 0 {
				t.Errorf("%s: residue %v frequency must be positive", u.Name(), a)
			}
			sum += f
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s: frequencies sum to %g", u.Name(), sum)
		}
		if u.AminoAcidFrequency(99) != 0 {
			t.Error("out of range must be 0")
		}
	}
}

func TestUsageSynonymousCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, u := range Usages() {
		for a := AminoAcid(0); a < NumResidues; a++ {
			for i := 0; i < 20; i++ {
				if c := u.SynonymousCodon(rng, a); c.Translate() != a {
					t.Fatalf("%s: %v sampled %v", u.Name(), a, c)
				}
			}
		}
	}
}

func TestUsageEncodeGeneRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := RandomProtSeq(rng, 100)
	for _, u := range Usages() {
		nt := u.EncodeGene(rng, p)
		if nt.Translate(0).String() != p.String() {
			t.Errorf("%s: gene does not translate back", u.Name())
		}
	}
}

// TestOrganismDifferences: the organism tables must reproduce known
// biology — E. coli prefers CUG leucine even more than human, and uses AGR
// arginine codons far less.
func TestOrganismDifferences(t *testing.T) {
	h, e := UsageHuman(), UsageEColi()
	agr, _ := ParseCodon("AGA")
	if e.Frequency(agr) >= h.Frequency(agr) {
		t.Error("E. coli should avoid AGA arginine")
	}
	cgu, _ := ParseCodon("CGU")
	if e.Frequency(cgu) <= h.Frequency(cgu) {
		t.Error("E. coli should prefer CGU arginine")
	}
	rng := rand.New(rand.NewSource(3))
	// Sampled AGY-serine fraction should be lower in E. coli... compute.
	agy := func(u *CodonUsage) float64 {
		n := 0
		const trials = 5000
		for i := 0; i < trials; i++ {
			c := u.SynonymousCodon(rng, Ser)
			if c[0] == A {
				n++
			}
		}
		return float64(n) / trials
	}
	// Expected fractions straight from the tables: human AGY/all-Ser =
	// 31.6/81.1 ≈ 0.39, E. coli 24.9/58.1 ≈ 0.43.
	hf, ef := agy(h), agy(e)
	if math.Abs(hf-0.39) > 0.03 {
		t.Errorf("human AGY serine fraction %.2f, expected ≈0.39", hf)
	}
	if math.Abs(ef-0.43) > 0.03 {
		t.Errorf("E. coli AGY serine fraction %.2f, expected ≈0.43", ef)
	}
}

func TestUsageName(t *testing.T) {
	if UsageHuman().Name() != "human" || UsageEColi().Name() != "ecoli" {
		t.Error("names wrong")
	}
}
