package bio

import (
	"math"
	"math/rand"
)

// MutationModel parameterizes how query proteins diverge from the database
// genes they originate from. Defaults follow the statistics the paper cites:
// substitutions dominate, while indels in protein-coding regions have an
// empirical frequency with mean 0.09 events per kilobase (sd 0.36, median 0)
// [Neininger et al., PLoS ONE 2019].
type MutationModel struct {
	// SubstitutionRate is the per-residue probability of replacing an amino
	// acid with a different one.
	SubstitutionRate float64
	// IndelRatePerKB is the expected number of indel events per kilobase of
	// the underlying coding nucleotides. Events are Poisson-distributed,
	// which matches the cited mean/median and closely matches the sd.
	IndelRatePerKB float64
	// MaxIndelLen bounds the residue length of a single indel event.
	// Empirically most protein indels are 1-2 residues; default 3.
	MaxIndelLen int
}

// DefaultMutationModel returns the model used by the paper's evaluation
// workloads: 5 % residue divergence and the empirical indel distribution.
func DefaultMutationModel() MutationModel {
	return MutationModel{SubstitutionRate: 0.05, IndelRatePerKB: 0.09, MaxIndelLen: 3}
}

// MutationStats reports what a Mutate call actually did.
type MutationStats struct {
	Substitutions int
	Insertions    int // residues inserted
	Deletions     int // residues deleted
	IndelEvents   int
}

// HasIndel reports whether any indel event occurred.
func (s MutationStats) HasIndel() bool { return s.IndelEvents > 0 }

// Mutate derives a diverged copy of p according to the model. The returned
// sequence is independent of the input.
func (m MutationModel) Mutate(rng *rand.Rand, p ProtSeq) (ProtSeq, MutationStats) {
	var stats MutationStats
	out := make(ProtSeq, len(p))
	copy(out, p)

	for i := range out {
		if rng.Float64() < m.SubstitutionRate {
			out[i] = substituteResidue(rng, out[i])
			stats.Substitutions++
		}
	}

	events := poisson(rng, m.IndelRatePerKB*float64(3*len(p))/1000)
	for e := 0; e < events; e++ {
		if len(out) == 0 {
			break
		}
		maxLen := m.MaxIndelLen
		if maxLen < 1 {
			maxLen = 1
		}
		n := 1 + rng.Intn(maxLen)
		if rng.Intn(2) == 0 {
			// Insertion of n random residues at a random position.
			pos := rng.Intn(len(out) + 1)
			ins := RandomProtSeq(rng, n)
			out = append(out[:pos], append(ins, out[pos:]...)...)
			stats.Insertions += n
		} else {
			// Deletion of up to n residues at a random position.
			pos := rng.Intn(len(out))
			if pos+n > len(out) {
				n = len(out) - pos
			}
			out = append(out[:pos], out[pos+n:]...)
			stats.Deletions += n
		}
		stats.IndelEvents++
	}
	return out, stats
}

// substituteResidue picks a residue different from a, weighted by background
// composition (a crude stand-in for a substitution matrix; adequate for
// workload generation).
func substituteResidue(rng *rand.Rand, a AminoAcid) AminoAcid {
	for {
		b := randomAminoAcid(rng)
		if b != a {
			return b
		}
	}
}

// MutateNucSubstitutions flips each nucleotide to a random different base
// with probability rate. Used to model sequencing noise on references.
func MutateNucSubstitutions(rng *rand.Rand, s NucSeq, rate float64) NucSeq {
	out := make(NucSeq, len(s))
	copy(out, s)
	for i := range out {
		if rng.Float64() < rate {
			out[i] = Nucleotide((int(out[i]) + 1 + rng.Intn(3))) & 3
		}
	}
	return out
}

// poisson samples a Poisson random variate with mean lambda using inversion
// (lambda is tiny in our models, so this is exact and fast).
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 { // guard against pathological lambda
			return k
		}
	}
}
