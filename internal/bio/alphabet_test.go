package bio

import (
	"testing"
	"testing/quick"
)

func TestNucleotideLetters(t *testing.T) {
	cases := []struct {
		n   Nucleotide
		rna byte
		dna byte
	}{
		{A, 'A', 'A'},
		{C, 'C', 'C'},
		{G, 'G', 'G'},
		{U, 'U', 'T'},
	}
	for _, tc := range cases {
		if got := tc.n.Letter(); got != tc.rna {
			t.Errorf("Letter(%d) = %c, want %c", tc.n, got, tc.rna)
		}
		if got := tc.n.DNALetter(); got != tc.dna {
			t.Errorf("DNALetter(%d) = %c, want %c", tc.n, got, tc.dna)
		}
	}
}

func TestParseNucleotide(t *testing.T) {
	for _, tc := range []struct {
		in   byte
		want Nucleotide
	}{
		{'A', A}, {'a', A}, {'C', C}, {'c', C},
		{'G', G}, {'g', G}, {'U', U}, {'u', U}, {'T', U}, {'t', U},
	} {
		got, err := ParseNucleotide(tc.in)
		if err != nil {
			t.Fatalf("ParseNucleotide(%q): %v", tc.in, err)
		}
		if got != tc.want {
			t.Errorf("ParseNucleotide(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	for _, bad := range []byte{'N', 'X', ' ', '-', 0} {
		if _, err := ParseNucleotide(bad); err == nil {
			t.Errorf("ParseNucleotide(%q) should fail", bad)
		}
	}
}

func TestComplement(t *testing.T) {
	pairs := map[Nucleotide]Nucleotide{A: U, U: A, C: G, G: C}
	for n, want := range pairs {
		if got := n.Complement(); got != want {
			t.Errorf("Complement(%v) = %v, want %v", n, got, want)
		}
	}
}

func TestComplementInvolution(t *testing.T) {
	f := func(b uint8) bool {
		n := Nucleotide(b % 4)
		return n.Complement().Complement() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNucleotideBits(t *testing.T) {
	// The comparator hardware depends on exactly this bit mapping.
	for _, tc := range []struct {
		n      Nucleotide
		b0, b1 uint8
	}{
		{A, 0, 0}, {C, 1, 0}, {G, 0, 1}, {U, 1, 1},
	} {
		if tc.n.Bit(0) != tc.b0 || tc.n.Bit(1) != tc.b1 {
			t.Errorf("%v bits = (%d,%d), want (%d,%d)",
				tc.n, tc.n.Bit(0), tc.n.Bit(1), tc.b0, tc.b1)
		}
	}
}

func TestAminoAcidLetters(t *testing.T) {
	seen := map[byte]bool{}
	for a := AminoAcid(0); a < NumResidues; a++ {
		l := a.Letter()
		if seen[l] {
			t.Errorf("duplicate one-letter code %c", l)
		}
		seen[l] = true
		parsed, err := ParseAminoAcid(l)
		if err != nil {
			t.Fatalf("ParseAminoAcid(%c): %v", l, err)
		}
		if parsed != a {
			t.Errorf("round-trip %c: got %v want %v", l, parsed, a)
		}
	}
	if !seen['*'] {
		t.Error("Stop must be encoded as '*'")
	}
}

func TestParseAminoAcidCaseInsensitive(t *testing.T) {
	for a := AminoAcid(0); a < NumAminoAcids; a++ {
		lower := a.Letter() + 'a' - 'A'
		got, err := ParseAminoAcid(lower)
		if err != nil || got != a {
			t.Errorf("ParseAminoAcid(%c) = %v, %v; want %v", lower, got, err, a)
		}
	}
}

func TestParseAminoAcidRejectsInvalid(t *testing.T) {
	for _, bad := range []byte{'B', 'J', 'O', 'U', 'X', 'Z', '1', ' '} {
		if _, err := ParseAminoAcid(bad); err == nil {
			t.Errorf("ParseAminoAcid(%q) should fail", bad)
		}
	}
}

func TestAminoAcidMetadata(t *testing.T) {
	if Met.ThreeLetter() != "Met" || Met.Name() != "methionine" {
		t.Errorf("Met metadata wrong: %q %q", Met.ThreeLetter(), Met.Name())
	}
	if !Stop.IsStop() || Met.IsStop() {
		t.Error("IsStop misclassifies")
	}
	if AminoAcid(99).String() != "?" || Nucleotide(7).String() != "?" {
		t.Error("out-of-range String should be ?")
	}
}
