// Package bio provides the biological substrate for FabP: nucleotide and
// amino-acid alphabets, the standard genetic code, sequence containers,
// 2-bit packing, FASTA I/O, deterministic sequence generators, and the
// empirical mutation models used by the paper's evaluation.
package bio

import "fmt"

// Nucleotide is a 2-bit encoded RNA/DNA base. The numeric values follow the
// FabP paper's reference encoding: A=00, C=01, G=10, U(T)=11. DNA thymine is
// treated as uracil throughout; FabP aligns against DNA and RNA references
// identically.
type Nucleotide uint8

const (
	A Nucleotide = 0 // adenine
	C Nucleotide = 1 // cytosine
	G Nucleotide = 2 // guanine
	U Nucleotide = 3 // uracil (thymine in DNA input)

	// NumNucleotides is the alphabet size.
	NumNucleotides = 4
)

// nucLetters maps Nucleotide values to their RNA letters.
var nucLetters = [NumNucleotides]byte{'A', 'C', 'G', 'U'}

// nucDNALetters maps Nucleotide values to their DNA letters.
var nucDNALetters = [NumNucleotides]byte{'A', 'C', 'G', 'T'}

// String returns the RNA letter for n, or "?" for out-of-range values.
func (n Nucleotide) String() string {
	if n >= NumNucleotides {
		return "?"
	}
	return string(nucLetters[n])
}

// Letter returns the RNA letter for n.
func (n Nucleotide) Letter() byte { return nucLetters[n&3] }

// DNALetter returns the DNA letter for n (T instead of U).
func (n Nucleotide) DNALetter() byte { return nucDNALetters[n&3] }

// Complement returns the Watson-Crick complement (A<->U, C<->G).
func (n Nucleotide) Complement() Nucleotide { return 3 - (n & 3) }

// Bit returns the i-th bit (0 = LSB) of the 2-bit encoding. FabP's comparator
// LUT consumes reference nucleotides bit-by-bit, so the bit accessors are part
// of the hardware contract: Bit(1) distinguishes {A,C} from {G,U} and Bit(0)
// distinguishes {A,G} from {C,U}.
func (n Nucleotide) Bit(i uint) uint8 { return uint8(n>>i) & 1 }

// ParseNucleotide converts an ASCII base letter (DNA or RNA, either case)
// into a Nucleotide. Whitespace is invalid here; the sequence decoders
// (ParseNucSeq, AppendNucASCII) are the whitespace-tolerant layer.
func ParseNucleotide(b byte) (Nucleotide, error) {
	if c := nucCodes[b]; c < NumNucleotides {
		return Nucleotide(c), nil
	}
	return 0, fmt.Errorf("bio: invalid nucleotide letter %q", b)
}

// AminoAcid identifies one of the 20 proteinogenic amino acids or the Stop
// signal. Values are dense (0..20) so they can index lookup tables such as
// the back-translation template set and the BLOSUM matrix.
type AminoAcid uint8

// Amino acids in alphabetical order of their one-letter codes, then Stop.
const (
	Ala  AminoAcid = iota // A — alanine
	Cys                   // C — cysteine
	Asp                   // D — aspartate
	Glu                   // E — glutamate
	Phe                   // F — phenylalanine
	Gly                   // G — glycine
	His                   // H — histidine
	Ile                   // I — isoleucine
	Lys                   // K — lysine
	Leu                   // L — leucine
	Met                   // M — methionine
	Asn                   // N — asparagine
	Pro                   // P — proline
	Gln                   // Q — glutamine
	Arg                   // R — arginine
	Ser                   // S — serine
	Thr                   // T — threonine
	Val                   // V — valine
	Trp                   // W — tryptophan
	Tyr                   // Y — tyrosine
	Stop                  // * — translation stop

	// NumAminoAcids counts the coding amino acids (Stop excluded).
	NumAminoAcids = 20
	// NumResidues counts all residue symbols including Stop.
	NumResidues = 21
)

var aaLetters = [NumResidues]byte{
	'A', 'C', 'D', 'E', 'F', 'G', 'H', 'I', 'K', 'L',
	'M', 'N', 'P', 'Q', 'R', 'S', 'T', 'V', 'W', 'Y', '*',
}

var aaThreeLetter = [NumResidues]string{
	"Ala", "Cys", "Asp", "Glu", "Phe", "Gly", "His", "Ile", "Lys", "Leu",
	"Met", "Asn", "Pro", "Gln", "Arg", "Ser", "Thr", "Val", "Trp", "Tyr", "Stp",
}

var aaNames = [NumResidues]string{
	"alanine", "cysteine", "aspartate", "glutamate", "phenylalanine",
	"glycine", "histidine", "isoleucine", "lysine", "leucine",
	"methionine", "asparagine", "proline", "glutamine", "arginine",
	"serine", "threonine", "valine", "tryptophan", "tyrosine", "stop",
}

// String returns the one-letter code for a.
func (a AminoAcid) String() string {
	if a >= NumResidues {
		return "?"
	}
	return string(aaLetters[a])
}

// Letter returns the one-letter code for a.
func (a AminoAcid) Letter() byte {
	if a >= NumResidues {
		return '?'
	}
	return aaLetters[a]
}

// ThreeLetter returns the conventional three-letter code ("Met", "Phe", ...).
func (a AminoAcid) ThreeLetter() string {
	if a >= NumResidues {
		return "???"
	}
	return aaThreeLetter[a]
}

// Name returns the full chemical name in lower case.
func (a AminoAcid) Name() string {
	if a >= NumResidues {
		return "unknown"
	}
	return aaNames[a]
}

// IsStop reports whether a is the translation stop signal.
func (a AminoAcid) IsStop() bool { return a == Stop }

// aaFromLetter is the inverse of aaLetters, built at init.
var aaFromLetter [256]AminoAcid

func init() {
	for i := range aaFromLetter {
		aaFromLetter[i] = 0xFF
	}
	for i, l := range aaLetters {
		aaFromLetter[l] = AminoAcid(i)
		if l >= 'A' && l <= 'Z' {
			aaFromLetter[l+'a'-'A'] = AminoAcid(i)
		}
	}
}

// ParseAminoAcid converts a one-letter residue code (either case; '*' for
// Stop) into an AminoAcid.
func ParseAminoAcid(b byte) (AminoAcid, error) {
	a := aaFromLetter[b]
	if a == 0xFF {
		return 0, fmt.Errorf("bio: invalid amino-acid letter %q", b)
	}
	return a, nil
}
