package bio

import (
	"strings"
	"testing"
)

// FuzzParseNucSeq: arbitrary input must never panic, and accepted inputs
// must round-trip through String (modulo case and T→U).
func FuzzParseNucSeq(f *testing.F) {
	f.Add("ACGT")
	f.Add("acgu")
	f.Add("AC GT\nNN")
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		seq, err := ParseNucSeq(in)
		if err != nil {
			return
		}
		re, err2 := ParseNucSeq(seq.String())
		if err2 != nil {
			t.Fatalf("round trip rejected %q", seq.String())
		}
		if re.String() != seq.String() {
			t.Fatal("round trip changed sequence")
		}
	})
}

// FuzzParseProtSeq mirrors FuzzParseNucSeq for proteins.
func FuzzParseProtSeq(f *testing.F) {
	f.Add("MKWVTF*")
	f.Add("mkw vtf")
	f.Add("BXZ")
	f.Fuzz(func(t *testing.T, in string) {
		seq, err := ParseProtSeq(in)
		if err != nil {
			return
		}
		re, err2 := ParseProtSeq(seq.String())
		if err2 != nil || re.String() != seq.String() {
			t.Fatal("round trip failed")
		}
	})
}

// FuzzFastaReader: arbitrary input must never panic or loop forever;
// well-formed records must round-trip.
func FuzzFastaReader(f *testing.F) {
	f.Add(">id desc\nACGT\n")
	f.Add(">a\n>b\nGG\n")
	f.Add("no header")
	f.Add(">")
	f.Fuzz(func(t *testing.T, in string) {
		fr := NewFastaReader(strings.NewReader(in))
		recs, err := fr.ReadAll()
		if err != nil {
			return
		}
		for _, r := range recs {
			if strings.ContainsAny(r.Data, "\n\r>") {
				t.Fatalf("record body contains structure: %q", r.Data)
			}
		}
	})
}
