package bio

import (
	"fmt"
	"strings"
)

// NucSeq is an unpacked nucleotide sequence (one Nucleotide per element).
type NucSeq []Nucleotide

// ParseNucSeq parses a DNA/RNA string into a NucSeq, ignoring whitespace.
func ParseNucSeq(s string) (NucSeq, error) {
	seq, i, err := AppendNucASCII(make(NucSeq, 0, len(s)), s)
	if err != nil {
		return nil, fmt.Errorf("bio: position %d: %w", i, err)
	}
	return seq, nil
}

// String renders the sequence with RNA letters.
func (s NucSeq) String() string {
	var b strings.Builder
	b.Grow(len(s))
	for _, n := range s {
		b.WriteByte(n.Letter())
	}
	return b.String()
}

// DNAString renders the sequence with DNA letters (T for U).
func (s NucSeq) DNAString() string {
	var b strings.Builder
	b.Grow(len(s))
	for _, n := range s {
		b.WriteByte(n.DNALetter())
	}
	return b.String()
}

// ReverseComplement returns the reverse complement of s as a new sequence.
func (s NucSeq) ReverseComplement() NucSeq {
	rc := make(NucSeq, len(s))
	for i, n := range s {
		rc[len(s)-1-i] = n.Complement()
	}
	return rc
}

// Translate translates the sequence starting at offset frame (0..2) into a
// protein, stopping before any trailing partial codon. Stop codons are
// included in the output as Stop residues.
func (s NucSeq) Translate(frame int) ProtSeq {
	if frame < 0 || frame > 2 || len(s) < frame+3 {
		return nil
	}
	n := (len(s) - frame) / 3
	p := make(ProtSeq, n)
	for i := 0; i < n; i++ {
		c := Codon{s[frame+3*i], s[frame+3*i+1], s[frame+3*i+2]}
		p[i] = c.Translate()
	}
	return p
}

// Codons splits the sequence into consecutive codons starting at offset 0,
// dropping any trailing partial codon.
func (s NucSeq) Codons() []Codon {
	n := len(s) / 3
	cs := make([]Codon, n)
	for i := 0; i < n; i++ {
		cs[i] = Codon{s[3*i], s[3*i+1], s[3*i+2]}
	}
	return cs
}

// ProtSeq is a protein sequence (one AminoAcid per element; may include Stop).
type ProtSeq []AminoAcid

// ParseProtSeq parses a one-letter-code protein string, ignoring whitespace.
func ParseProtSeq(s string) (ProtSeq, error) {
	seq := make(ProtSeq, 0, len(s))
	for i := 0; i < len(s); i++ {
		b := s[i]
		if b == ' ' || b == '\t' || b == '\n' || b == '\r' {
			continue
		}
		a, err := ParseAminoAcid(b)
		if err != nil {
			return nil, fmt.Errorf("bio: position %d: %w", i, err)
		}
		seq = append(seq, a)
	}
	return seq, nil
}

// String renders the protein with one-letter codes.
func (p ProtSeq) String() string {
	var b strings.Builder
	b.Grow(len(p))
	for _, a := range p {
		b.WriteByte(a.Letter())
	}
	return b.String()
}

// BackTranslateArbitrary returns one concrete nucleotide sequence that
// translates back to p, choosing the first codon of each residue. It is the
// naive (non-degenerate) back-translation; the FabP degenerate representation
// lives in package backtrans.
func (p ProtSeq) BackTranslateArbitrary() NucSeq {
	s := make(NucSeq, 0, 3*len(p))
	for _, a := range p {
		c := a.Codons()[0]
		s = append(s, c[0], c[1], c[2])
	}
	return s
}

// PackedNucSeq stores nucleotides 2 bits each, 32 per uint64 word, exactly as
// FabP lays the reference out in FPGA DRAM: element i occupies bits
// [2i%64, 2i%64+1] of word i/32, low bits first.
type PackedNucSeq struct {
	words []uint64
	n     int
}

// NucsPerWord is the number of 2-bit nucleotides in one 64-bit word.
const NucsPerWord = 32

// Pack converts an unpacked sequence into packed DRAM layout.
func Pack(s NucSeq) *PackedNucSeq {
	p := &PackedNucSeq{
		words: make([]uint64, (len(s)+NucsPerWord-1)/NucsPerWord),
		n:     len(s),
	}
	for i, nt := range s {
		p.words[i/NucsPerWord] |= uint64(nt&3) << (2 * uint(i%NucsPerWord))
	}
	return p
}

// NewPackedNucSeq allocates an all-A packed sequence of length n.
func NewPackedNucSeq(n int) *PackedNucSeq {
	return &PackedNucSeq{words: make([]uint64, (n+NucsPerWord-1)/NucsPerWord), n: n}
}

// Len returns the number of nucleotides stored.
func (p *PackedNucSeq) Len() int { return p.n }

// At returns nucleotide i.
func (p *PackedNucSeq) At(i int) Nucleotide {
	return Nucleotide(p.words[i/NucsPerWord]>>(2*uint(i%NucsPerWord))) & 3
}

// Set stores nucleotide nt at position i.
func (p *PackedNucSeq) Set(i int, nt Nucleotide) {
	w := &p.words[i/NucsPerWord]
	sh := 2 * uint(i%NucsPerWord)
	*w = *w&^(3<<sh) | uint64(nt&3)<<sh
}

// Words exposes the raw 64-bit DRAM words. The slice is shared with the
// receiver; callers must treat it as read-only.
func (p *PackedNucSeq) Words() []uint64 { return p.words }

// Unpack expands the packed sequence back to a NucSeq.
func (p *PackedNucSeq) Unpack() NucSeq {
	s := make(NucSeq, p.n)
	for i := range s {
		s[i] = p.At(i)
	}
	return s
}

// Slice returns the unpacked window [from, to). Out-of-range indices are
// clipped to the sequence bounds.
func (p *PackedNucSeq) Slice(from, to int) NucSeq {
	if from < 0 {
		from = 0
	}
	if to > p.n {
		to = p.n
	}
	if from >= to {
		return nil
	}
	s := make(NucSeq, to-from)
	for i := range s {
		s[i] = p.At(from + i)
	}
	return s
}

// Bytes serializes the packed words little-endian, the byte stream an AXI
// master would fetch from DRAM.
func (p *PackedNucSeq) Bytes() []byte {
	b := make([]byte, 8*len(p.words))
	for i, w := range p.words {
		for j := 0; j < 8; j++ {
			b[8*i+j] = byte(w >> (8 * uint(j)))
		}
	}
	return b
}
