package bio

import "testing"

func TestIUPACAccepts(t *testing.T) {
	cases := []struct {
		code byte
		want map[Nucleotide]bool
	}{
		{'A', map[Nucleotide]bool{A: true, C: false, G: false, U: false}},
		{'T', map[Nucleotide]bool{U: true, A: false}},
		{'R', map[Nucleotide]bool{A: true, G: true, C: false, U: false}},
		{'Y', map[Nucleotide]bool{C: true, U: true, A: false, G: false}},
		{'H', map[Nucleotide]bool{A: true, C: true, U: true, G: false}},
		{'N', map[Nucleotide]bool{A: true, C: true, G: true, U: true}},
	}
	for _, tc := range cases {
		for n, want := range tc.want {
			if got := IUPACAccepts(tc.code, n); got != want {
				t.Errorf("IUPACAccepts(%c, %v) = %v, want %v", tc.code, n, got, want)
			}
		}
	}
	if IUPACAccepts('X', A) || IUPACAccepts('A', Nucleotide(9)) {
		t.Error("unknown code / bad nucleotide must reject")
	}
}

func TestIUPACSetSize(t *testing.T) {
	cases := map[byte]int{'A': 1, 'R': 2, 'H': 3, 'N': 4, 'X': 0}
	for code, want := range cases {
		if got := IUPACSetSize(code); got != want {
			t.Errorf("IUPACSetSize(%c) = %d, want %d", code, got, want)
		}
	}
}

func TestParseNucSeqIUPAC(t *testing.T) {
	seq, amb, err := ParseNucSeqIUPAC("ACGTNRY acgt")
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 11 || amb != 3 {
		t.Fatalf("len %d amb %d", len(seq), amb)
	}
	// Each resolved base must belong to its code's set.
	if !IUPACAccepts('N', seq[4]) || !IUPACAccepts('R', seq[5]) || !IUPACAccepts('Y', seq[6]) {
		t.Errorf("resolved bases outside their sets: %v", seq[4:7])
	}
	// Determinism.
	seq2, _, _ := ParseNucSeqIUPAC("ACGTNRY acgt")
	if seq.String() != seq2.String() {
		t.Error("resolution must be deterministic")
	}
	// Pure ACGT input resolves nothing.
	_, amb, err = ParseNucSeqIUPAC("ACGT")
	if err != nil || amb != 0 {
		t.Errorf("clean input: amb=%d err=%v", amb, err)
	}
	// Truly invalid letters still fail.
	if _, _, err := ParseNucSeqIUPAC("ACG!"); err == nil {
		t.Error("invalid letter must fail")
	}
	// Unbiased-ish composition of N runs: all four bases appear.
	long := make([]byte, 4000)
	for i := range long {
		long[i] = 'N'
	}
	nseq, amb, err := ParseNucSeqIUPAC(string(long))
	if err != nil || amb != 4000 {
		t.Fatal("N run parse failed")
	}
	var counts [4]int
	for _, n := range nseq {
		counts[n]++
	}
	for v, c := range counts {
		if c < 500 {
			t.Errorf("base %d underrepresented in N resolution: %d", v, c)
		}
	}
}

func TestIUPACMatchesSeq(t *testing.T) {
	s, _ := ParseNucSeq("AUG")
	if !IUPACMatchesSeq("AUG", s) || !IUPACMatchesSeq("NNN", s) || !IUPACMatchesSeq("RUS", s) {
		t.Error("valid patterns rejected")
	}
	if IUPACMatchesSeq("AUC", s) || IUPACMatchesSeq("AU", s) || IUPACMatchesSeq("AUGG", s) {
		t.Error("invalid patterns accepted")
	}
}
