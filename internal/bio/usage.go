package bio

import "math/rand"

// CodonUsage is an organism's codon frequency table (occurrences per
// thousand codons) with precomputed sampling structures.
type CodonUsage struct {
	name    string
	byIndex [NumCodons]float64
	aaFreq  [NumResidues]float64
	synCDF  [NumResidues][]float64
}

// Name returns the organism label.
func (u *CodonUsage) Name() string { return u.name }

// Frequency returns the per-thousand frequency of codon c.
func (u *CodonUsage) Frequency(c Codon) float64 { return u.byIndex[c.Index()] }

// AminoAcidFrequency returns the implied residue composition.
func (u *CodonUsage) AminoAcidFrequency(a AminoAcid) float64 {
	if a >= NumResidues {
		return 0
	}
	return u.aaFreq[a]
}

// newCodonUsage builds the sampling structures from a raw table.
func newCodonUsage(name string, table map[string]float64) *CodonUsage {
	u := &CodonUsage{name: name}
	for s, f := range table {
		c, err := ParseCodon(s)
		if err != nil {
			panic(err)
		}
		u.byIndex[c.Index()] = f
	}
	var total float64
	for i := 0; i < NumCodons; i++ {
		if u.byIndex[i] == 0 {
			panic("bio: codon usage table for " + name + " is incomplete")
		}
		u.aaFreq[codonToAA[i]] += u.byIndex[i]
		total += u.byIndex[i]
	}
	for i := range u.aaFreq {
		u.aaFreq[i] /= total
	}
	for aa := AminoAcid(0); aa < NumResidues; aa++ {
		codons := aa.Codons()
		cdf := make([]float64, len(codons))
		var sum float64
		for i, c := range codons {
			sum += u.byIndex[c.Index()]
			cdf[i] = sum
		}
		u.synCDF[aa] = cdf
	}
	return u
}

// SynonymousCodon picks a codon encoding a, weighted by this organism's
// usage.
func (u *CodonUsage) SynonymousCodon(rng *rand.Rand, a AminoAcid) Codon {
	codons := a.Codons()
	if len(codons) == 1 {
		return codons[0]
	}
	cdf := u.synCDF[a]
	x := rng.Float64() * cdf[len(cdf)-1]
	for i, c := range cdf {
		if x < c {
			return codons[i]
		}
	}
	return codons[len(codons)-1]
}

// EncodeGene back-translates p with this organism's codon preferences.
func (u *CodonUsage) EncodeGene(rng *rand.Rand, p ProtSeq) NucSeq {
	s := make(NucSeq, 0, 3*len(p))
	for _, a := range p {
		c := u.SynonymousCodon(rng, a)
		s = append(s, c[0], c[1], c[2])
	}
	return s
}

// ecoliCodonUsage is the E. coli K-12 codon usage (per thousand; Kazusa).
// E. coli strongly prefers CGU/CGC for arginine and uses far fewer AGY
// serines than human — which changes the cost of the paper's UCD serine
// template across organisms.
var ecoliCodonUsage = map[string]float64{
	"UUU": 22.2, "UUC": 16.6, "UUA": 13.9, "UUG": 13.7,
	"CUU": 11.0, "CUC": 11.0, "CUA": 3.9, "CUG": 52.6,
	"AUU": 30.3, "AUC": 25.1, "AUA": 4.4, "AUG": 27.9,
	"GUU": 18.3, "GUC": 15.3, "GUA": 10.9, "GUG": 26.4,
	"UCU": 8.5, "UCC": 8.6, "UCA": 7.2, "UCG": 8.9,
	"CCU": 7.0, "CCC": 5.5, "CCA": 8.4, "CCG": 23.2,
	"ACU": 9.0, "ACC": 23.4, "ACA": 7.1, "ACG": 14.4,
	"GCU": 15.3, "GCC": 25.5, "GCA": 20.1, "GCG": 33.6,
	"UAU": 16.2, "UAC": 12.2, "UAA": 2.0, "UAG": 0.2,
	"CAU": 12.9, "CAC": 9.7, "CAA": 15.3, "CAG": 28.8,
	"AAU": 17.7, "AAC": 21.7, "AAA": 33.6, "AAG": 10.3,
	"GAU": 32.1, "GAC": 19.1, "GAA": 39.4, "GAG": 17.8,
	"UGU": 5.2, "UGC": 6.4, "UGA": 0.9, "UGG": 15.2,
	"CGU": 20.9, "CGC": 22.0, "CGA": 3.6, "CGG": 5.4,
	"AGU": 8.8, "AGC": 16.1, "AGA": 2.1, "AGG": 1.2,
	"GGU": 24.7, "GGC": 29.6, "GGA": 8.0, "GGG": 11.1,
}

var (
	usageHuman *CodonUsage
	usageEColi *CodonUsage
)

func init() {
	usageHuman = newCodonUsage("human", humanCodonUsage)
	usageEColi = newCodonUsage("ecoli", ecoliCodonUsage)
}

// UsageHuman returns the human codon-usage table (the default used by
// EncodeGene and SyntheticReference).
func UsageHuman() *CodonUsage { return usageHuman }

// UsageEColi returns the E. coli K-12 codon-usage table.
func UsageEColi() *CodonUsage { return usageEColi }

// Usages lists the built-in organisms.
func Usages() []*CodonUsage { return []*CodonUsage{usageHuman, usageEColi} }
