package bio

import "math/rand"

// humanCodonUsage holds codon frequencies (occurrences per thousand codons)
// for the human transcriptome (Kazusa codon-usage database, GenBank release
// aggregate). The synthetic reference generator uses it so planted coding
// regions have a realistic codon distribution rather than a uniform one.
var humanCodonUsage = map[string]float64{
	"UUU": 17.6, "UUC": 20.3, "UUA": 7.7, "UUG": 12.9,
	"CUU": 13.2, "CUC": 19.6, "CUA": 7.2, "CUG": 39.6,
	"AUU": 16.0, "AUC": 20.8, "AUA": 7.5, "AUG": 22.0,
	"GUU": 11.0, "GUC": 14.5, "GUA": 7.1, "GUG": 28.1,
	"UCU": 15.2, "UCC": 17.7, "UCA": 12.2, "UCG": 4.4,
	"CCU": 17.5, "CCC": 19.8, "CCA": 16.9, "CCG": 6.9,
	"ACU": 13.1, "ACC": 18.9, "ACA": 15.1, "ACG": 6.1,
	"GCU": 18.4, "GCC": 27.7, "GCA": 15.8, "GCG": 7.4,
	"UAU": 12.2, "UAC": 15.3, "UAA": 1.0, "UAG": 0.8,
	"CAU": 10.9, "CAC": 15.1, "CAA": 12.3, "CAG": 34.2,
	"AAU": 17.0, "AAC": 19.1, "AAA": 24.4, "AAG": 31.9,
	"GAU": 21.8, "GAC": 25.1, "GAA": 29.0, "GAG": 39.6,
	"UGU": 10.6, "UGC": 12.6, "UGA": 1.6, "UGG": 13.2,
	"CGU": 4.5, "CGC": 10.4, "CGA": 6.2, "CGG": 11.4,
	"AGU": 12.1, "AGC": 19.5, "AGA": 12.2, "AGG": 12.0,
	"GGU": 10.8, "GGC": 22.2, "GGA": 16.5, "GGG": 16.5,
}

// codonUsageByIndex is humanCodonUsage re-keyed by dense codon index.
var codonUsageByIndex [NumCodons]float64

// aaFrequency is the amino-acid composition implied by the codon usage
// table, used when sampling random protein queries.
var aaFrequency [NumResidues]float64

// synonymousCDF holds, per amino acid, the cumulative usage weights of its
// codons, for weighted synonymous codon sampling.
var synonymousCDF [NumResidues][]float64

func init() {
	for s, f := range humanCodonUsage {
		c, err := ParseCodon(s)
		if err != nil {
			panic(err)
		}
		codonUsageByIndex[c.Index()] = f
	}
	var total float64
	for i := 0; i < NumCodons; i++ {
		if codonUsageByIndex[i] == 0 {
			panic("bio: codon usage table is incomplete")
		}
		aaFrequency[codonToAA[i]] += codonUsageByIndex[i]
		total += codonUsageByIndex[i]
	}
	for i := range aaFrequency {
		aaFrequency[i] /= total
	}
	for aa := AminoAcid(0); aa < NumResidues; aa++ {
		codons := aa.Codons()
		cdf := make([]float64, len(codons))
		var sum float64
		for i, c := range codons {
			sum += codonUsageByIndex[c.Index()]
			cdf[i] = sum
		}
		synonymousCDF[aa] = cdf
	}
}

// AminoAcidFrequency returns the background composition probability of a in
// coding regions (derived from human codon usage; Stop has the frequency of
// stop codons).
func AminoAcidFrequency(a AminoAcid) float64 {
	if a >= NumResidues {
		return 0
	}
	return aaFrequency[a]
}

// RandomNucSeq generates n uniform random nucleotides.
func RandomNucSeq(rng *rand.Rand, n int) NucSeq {
	s := make(NucSeq, n)
	for i := range s {
		s[i] = Nucleotide(rng.Intn(NumNucleotides))
	}
	return s
}

// RandomProtSeq generates n residues sampled from the coding-region
// amino-acid composition, never emitting Stop (query proteins are complete
// chains).
func RandomProtSeq(rng *rand.Rand, n int) ProtSeq {
	p := make(ProtSeq, n)
	for i := range p {
		p[i] = randomAminoAcid(rng)
	}
	return p
}

func randomAminoAcid(rng *rand.Rand) AminoAcid {
	// Rejection-free sampling over the 20 coding residues.
	x := rng.Float64() * (1 - aaFrequency[Stop])
	var cum float64
	for a := AminoAcid(0); a < NumAminoAcids; a++ {
		cum += aaFrequency[a]
		if x < cum {
			return a
		}
	}
	return Tyr
}

// SynonymousCodon picks a codon encoding a, weighted by human codon usage.
func SynonymousCodon(rng *rand.Rand, a AminoAcid) Codon {
	codons := a.Codons()
	if len(codons) == 1 {
		return codons[0]
	}
	cdf := synonymousCDF[a]
	x := rng.Float64() * cdf[len(cdf)-1]
	for i, c := range cdf {
		if x < c {
			return codons[i]
		}
	}
	return codons[len(codons)-1]
}

// EncodeGene back-translates p into a concrete coding sequence using
// usage-weighted synonymous codon choice. The result translates back to p
// exactly.
func EncodeGene(rng *rand.Rand, p ProtSeq) NucSeq {
	s := make(NucSeq, 0, 3*len(p))
	for _, a := range p {
		c := SynonymousCodon(rng, a)
		s = append(s, c[0], c[1], c[2])
	}
	return s
}

// PlantedGene records where a known protein was embedded in a synthetic
// reference, so experiments can score hit recovery.
type PlantedGene struct {
	// Protein is the translated product of the planted coding region.
	Protein ProtSeq
	// Pos is the nucleotide offset of the first codon in the reference.
	Pos int
}

// SyntheticReference builds a reference of exactly length nucleotides:
// uniform random background with numGenes coding regions (each geneLen
// residues, codon-usage weighted) planted at non-overlapping positions.
// It returns the reference and the planted gene records sorted by position.
func SyntheticReference(rng *rand.Rand, length, numGenes, geneLen int) (NucSeq, []PlantedGene) {
	ref := RandomNucSeq(rng, length)
	geneNT := 3 * geneLen
	if numGenes <= 0 || geneNT == 0 || geneNT > length {
		return ref, nil
	}
	// Partition the reference into numGenes equal slots and plant one gene at
	// a random offset within each slot, guaranteeing non-overlap.
	slot := length / numGenes
	if slot < geneNT {
		numGenes = length / geneNT
		if numGenes == 0 {
			return ref, nil
		}
		slot = length / numGenes
	}
	genes := make([]PlantedGene, 0, numGenes)
	for g := 0; g < numGenes; g++ {
		prot := RandomProtSeq(rng, geneLen)
		pos := g*slot + rng.Intn(slot-geneNT+1)
		copy(ref[pos:pos+geneNT], EncodeGene(rng, prot))
		genes = append(genes, PlantedGene{Protein: prot, Pos: pos})
	}
	return ref, genes
}
