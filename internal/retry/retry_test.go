package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"
)

// TestBackoffDelayBounds is the schedule's core property, swept across
// random seeds, keys and retry ordinals: every delay lies in [Base, Cap],
// never below the base (no zero-sleep hot retry loops) and never above
// the cap (no unbounded exponential), and the exponential ceiling
// Base<<(n-1) holds while it is below the cap.
func TestBackoffDelayBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		b := Backoff{
			Base: time.Duration(1+rng.Intn(10)) * time.Millisecond,
			Cap:  time.Duration(20+rng.Intn(200)) * time.Millisecond,
			Seed: rng.Uint64(),
		}
		key := rng.Uint64()
		n := 1 + rng.Intn(70) // past the 62-bit shift guard on purpose
		d := b.Delay(n, key)
		if d < b.Base || d > b.Cap {
			t.Fatalf("Delay(%d) = %v outside [%v, %v] (seed %d key %d)",
				n, d, b.Base, b.Cap, b.Seed, key)
		}
		if ceil := b.Base << (n - 1); n-1 < 62 && ceil > 0 && ceil < b.Cap && d > ceil {
			t.Fatalf("Delay(%d) = %v above exponential ceiling %v", n, d, ceil)
		}
	}
}

// TestBackoffDelayDeterministic: the schedule replays exactly from its
// seed — same (Seed, key, n) always yields the same delay, and distinct
// keys decorrelate (not all identical across a window of retries).
func TestBackoffDelayDeterministic(t *testing.T) {
	b := Backoff{Base: time.Millisecond, Cap: 100 * time.Millisecond, Seed: 7}
	distinct := false
	for n := 1; n <= 10; n++ {
		for key := uint64(0); key < 8; key++ {
			d1, d2 := b.Delay(n, key), b.Delay(n, key)
			if d1 != d2 {
				t.Fatalf("Delay(%d, %d) not deterministic: %v then %v", n, key, d1, d2)
			}
			if d1 != b.Delay(n, 0) {
				distinct = true
			}
		}
	}
	if !distinct {
		t.Fatal("all keys produced identical schedules; jitter is not key-decorrelated")
	}
}

// TestBackoffZeroValueDefaults: the zero Backoff still yields sane
// delays ([DefaultBase, DefaultCap]), and a cap below the base clamps
// rather than producing an empty interval.
func TestBackoffZeroValueDefaults(t *testing.T) {
	var b Backoff
	if d := b.Delay(3, 1); d < DefaultBase || d > DefaultCap {
		t.Fatalf("zero-value Delay = %v outside [%v, %v]", d, DefaultBase, DefaultCap)
	}
	inverted := Backoff{Base: 50 * time.Millisecond, Cap: time.Millisecond}
	if d := inverted.Delay(1, 0); d != 50*time.Millisecond {
		t.Fatalf("cap<base Delay = %v, want clamped to base", d)
	}
}

// TestDoRetryBudgetNeverExceeded: an op that always fails transiently is
// attempted exactly Max+1 times — the budget is a hard bound, swept over
// budgets.
func TestDoRetryBudgetNeverExceeded(t *testing.T) {
	for _, max := range []int{0, 1, 3, 7} {
		calls := 0
		attempts, err := Do(context.Background(),
			Backoff{Base: time.Microsecond, Cap: 10 * time.Microsecond, Max: max}, 0,
			func(context.Context) error {
				calls++
				return Transient(errors.New("flaky"))
			})
		if calls != max+1 || attempts != max+1 {
			t.Fatalf("Max=%d: op ran %d times (reported %d), want %d", max, calls, attempts, max+1)
		}
		if !Retryable(err) {
			t.Fatalf("Max=%d: terminal error %v lost its transient classification", max, err)
		}
	}
}

// TestDoNonRetryableStopsImmediately: a permanent failure consumes no
// retry budget, and a success stops the loop.
func TestDoNonRetryableStopsImmediately(t *testing.T) {
	perm := errors.New("permanent")
	attempts, err := Do(context.Background(), Backoff{Max: 5}, 0,
		func(context.Context) error { return perm })
	if attempts != 1 || !errors.Is(err, perm) {
		t.Fatalf("permanent failure: %d attempts, err %v; want 1 attempt", attempts, err)
	}
	n := 0
	attempts, err = Do(context.Background(), Backoff{Base: time.Microsecond, Max: 5}, 0,
		func(context.Context) error {
			if n++; n < 3 {
				return Transient(errors.New("flaky"))
			}
			return nil
		})
	if attempts != 3 || err != nil {
		t.Fatalf("eventual success: %d attempts, err %v; want 3, nil", attempts, err)
	}
}

// TestSleepCanceledAbortsImmediately: a canceled context aborts the
// sleep right away — a 10-second sleep must return in well under that —
// and repeated canceled sleeps leave no goroutine behind (the timer is
// stopped, not leaked).
func TestSleepCanceledAbortsImmediately(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	t0 := time.Now()
	if err := Sleep(ctx, 10*time.Second); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep under canceled ctx = %v, want context.Canceled", err)
	}
	if el := time.Since(t0); el > time.Second {
		t.Fatalf("canceled Sleep took %v; the abort is not immediate", el)
	}

	before := runtime.NumGoroutine()
	for i := 0; i < 200; i++ {
		c, stop := context.WithCancel(context.Background())
		stop()
		_ = Sleep(c, time.Hour)
	}
	runtime.GC() // settle any timer bookkeeping before counting
	time.Sleep(10 * time.Millisecond)
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines %d -> %d after 200 canceled sleeps; timers leaked", before, after)
	}
}

// TestSleepCancelMidWait: cancellation arriving during the wait (not
// before it) also aborts promptly.
func TestSleepCancelMidWait(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	err := Sleep(ctx, 10*time.Second)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep = %v, want context.Canceled", err)
	}
	if el := time.Since(t0); el > time.Second {
		t.Fatalf("mid-wait cancel took %v to abort", el)
	}
}

// TestRetryableClassification pins the classification table: transient
// wrappers and Temporary() errors anywhere in the chain retry; nil,
// context errors and plain errors do not.
func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{errors.New("plain"), false},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{fmt.Errorf("wrap: %w", context.Canceled), false},
		{Transient(errors.New("flaky")), true},
		{fmt.Errorf("shard 3: %w", Transient(errors.New("flaky"))), true},
		// A transient wrapper around a context error is still not
		// retryable: the caller's clock has spoken.
		{Transient(context.DeadlineExceeded), false},
	}
	for i, c := range cases {
		if got := Retryable(c.err); got != c.want {
			t.Errorf("case %d: Retryable(%v) = %v, want %v", i, c.err, got, c.want)
		}
	}
}
