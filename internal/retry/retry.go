// Package retry is the backoff arithmetic under the scan pipeline's
// resilience layer: a bounded exponential schedule with deterministic,
// seed-driven jitter, a context-aware sleep that never leaks a timer,
// and the transient-error classification the shard scheduler and stream
// reader share.
package retry

import (
	"context"
	"errors"
	"time"
)

// DefaultBase and DefaultCap bound a zero-valued Backoff's delays.
const (
	DefaultBase = 1 * time.Millisecond
	DefaultCap  = 100 * time.Millisecond
)

// Backoff is a bounded exponential backoff schedule. The n-th retry's
// delay is deterministic in (Seed, key, n): jitter drawn from
// [Base, min(Cap, Base<<(n-1))], so every delay lies in [Base, Cap] and
// the schedule replays exactly from its seed. Max bounds the retries
// AFTER the first attempt (0 = no retries).
type Backoff struct {
	Base time.Duration
	Cap  time.Duration
	Max  int
	Seed uint64
}

// normalized fills defaults: Base at least DefaultBase, Cap at least
// Base (a cap below the base would make the interval empty).
func (b Backoff) normalized() Backoff {
	if b.Base <= 0 {
		b.Base = DefaultBase
	}
	if b.Cap <= 0 {
		b.Cap = DefaultCap
	}
	if b.Cap < b.Base {
		b.Cap = b.Base
	}
	return b
}

// Delay returns the jittered delay before retry n (1-based). key
// decorrelates concurrent retriers (shards) so they do not thunder in
// lockstep; the result always lies in [Base, Cap].
func (b Backoff) Delay(n int, key uint64) time.Duration {
	b = b.normalized()
	if n < 1 {
		n = 1
	}
	// Exponential ceiling Base<<(n-1), saturating at Cap (shifts past 62
	// bits or overflowing straight to the cap).
	hi := b.Cap
	if n-1 < 62 {
		if e := b.Base << (n - 1); e > 0 && e < b.Cap {
			hi = e
		}
	}
	if hi < b.Base {
		hi = b.Base
	}
	span := int64(hi - b.Base)
	if span <= 0 {
		return b.Base
	}
	j := mix(mix(b.Seed^key) ^ uint64(n))
	return b.Base + time.Duration(int64(j%uint64(span+1)))
}

func mix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Sleep waits d or until ctx is done, whichever comes first, returning
// ctx.Err() on an aborted wait. The timer is always stopped, so a
// canceled sleep leaves nothing running — the property the backoff
// schedule's no-timer-leak test pins.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// temporary is the classification interface transient errors expose
// (faultinject's injected errors, net.Error-style failures).
type temporary interface{ Temporary() bool }

// Transient wraps err so Retryable reports it retryable.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err}
}

type transientError struct{ err error }

func (e *transientError) Error() string   { return e.err.Error() }
func (e *transientError) Unwrap() error   { return e.err }
func (e *transientError) Temporary() bool { return true }

// Retryable reports whether err is worth retrying: any error in the
// chain exposing Temporary() == true. Context cancellation and deadline
// expiry are never retryable — the caller's clock has spoken.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	for e := err; e != nil; e = errors.Unwrap(e) {
		if t, ok := e.(temporary); ok && t.Temporary() {
			return true
		}
	}
	return false
}

// Do runs op, retrying retryable failures up to b.Max times with the
// schedule's delays. It returns the attempt count alongside the terminal
// result; a context canceled mid-sleep aborts immediately.
func Do(ctx context.Context, b Backoff, key uint64, op func(ctx context.Context) error) (attempts int, err error) {
	for n := 0; ; n++ {
		attempts++
		err = op(ctx)
		if err == nil || n >= b.Max || !Retryable(err) {
			return attempts, err
		}
		if serr := Sleep(ctx, b.Delay(n+1, key)); serr != nil {
			return attempts, serr
		}
	}
}
